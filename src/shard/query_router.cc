#include "shard/query_router.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "exec/index_backend.h"
#include "sgtree/search.h"

namespace sgtree {
namespace {

// Nearest-rank percentile over per-query wall times; `sorted_us` ascending.
double PercentileUs(const std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const double frac = p / 100.0 * static_cast<double>(sorted_us.size());
  size_t rank = static_cast<size_t>(std::ceil(frac));
  if (rank < 1) rank = 1;
  if (rank > sorted_us.size()) rank = sorted_us.size();
  return sorted_us[rank - 1];
}

bool IsKnn(QueryType type) {
  return type == QueryType::kKnn || type == QueryType::kBestFirstKnn;
}

// Gathers one query's per-shard answers into `out` (whose error field is
// already clear): values are merged under the same canonical orders the
// single-tree search emits, counters are summed, and the service time is
// the slowest shard task.
void MergeQuery(const QueryRequest& request, const QueryResult* parts,
                uint32_t num_shards, QueryResult* out) {
  size_t total_neighbors = 0;
  size_t total_ids = 0;
  for (uint32_t i = 0; i < num_shards; ++i) {
    total_neighbors += parts[i].neighbors.size();
    total_ids += parts[i].ids.size();
  }
  out->neighbors.reserve(total_neighbors);
  out->ids.reserve(total_ids);
  for (uint32_t i = 0; i < num_shards; ++i) {
    out->neighbors.insert(out->neighbors.end(), parts[i].neighbors.begin(),
                          parts[i].neighbors.end());
    out->ids.insert(out->ids.end(), parts[i].ids.begin(),
                    parts[i].ids.end());
    out->stats += parts[i].stats;
    out->trace += parts[i].trace;
    out->elapsed_us = std::max(out->elapsed_us, parts[i].elapsed_us);
  }
  // Tids are unique across shards (the index partitions by tid), so these
  // sorts see no equal keys and the orders are total.
  std::sort(out->neighbors.begin(), out->neighbors.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.tid < b.tid;
            });
  std::sort(out->ids.begin(), out->ids.end());
  if (IsKnn(request.type) && out->neighbors.size() > request.k) {
    // Every shard over-answers with its local top-k; the global answer is
    // the k best of the union.
    out->neighbors.resize(request.k);
  }
}

}  // namespace

QueryRouter::QueryRouter(const ShardedIndex& index, QueryExecutor* executor,
                         const QueryRouterOptions& options)
    : index_(&index), executor_(executor), options_(options) {
  if (options_.pool_shards > 0) {
    shared_pool_ = std::make_unique<ShardedBufferPool>(options_.buffer_pages,
                                                       options_.pool_shards);
    return;
  }
  const uint32_t workers = executor_->num_threads();
  worker_pools_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    worker_pools_.push_back(
        std::make_unique<BufferPool>(options_.buffer_pages));
  }
}

PageCache* QueryRouter::PoolFor(uint32_t worker_id) {
  if (shared_pool_ != nullptr) return shared_pool_.get();
  return worker_pools_[worker_id].get();
}

std::vector<QueryResult> QueryRouter::Run(
    const std::vector<QueryRequest>& batch) {
  const size_t n = batch.size();
  const uint32_t s = index_->num_shards();
  std::vector<QueryResult> merged(n);
  std::vector<uint8_t> valid(n, 0);
  for (size_t i = 0; i < n; ++i) {
    merged[i].error = ValidateRequest(batch[i]);
    valid[i] = merged[i].ok() ? 1 : 0;
  }

  // One task per (query, shard), query-major so a serial executor still
  // visits a query's shards back to back (the shared bound tightens soonest
  // that way). Each slot is written by exactly one worker.
  std::vector<QueryResult> partial(n * s);
  std::vector<SharedPruneBound> bounds(n);
  Timer batch_timer;
  executor_->ParallelFor(n * s, [&](size_t task, uint32_t worker_id) {
    const size_t qi = task / s;
    if (valid[qi] == 0) return;
    const uint32_t si = static_cast<uint32_t>(task % s);
    const QueryRequest& request = batch[qi];
    PageCache* pool = PoolFor(worker_id);
    // Private pools start every shard task cold — the same per-query
    // cold-cache protocol as the executor, applied per sub-query.
    if (shared_pool_ == nullptr) pool->Clear();
    SharedPruneBound* bound = options_.shared_knn_bound && IsKnn(request.type)
                                  ? &bounds[qi]
                                  : nullptr;
    partial[task] = Execute(SgTreeBackend(index_->shard(si), bound), request,
                            pool);
  });

  std::vector<uint64_t> shard_queries(s, 0);
  std::vector<uint64_t> shard_ios(s, 0);
  std::vector<uint64_t> shard_nodes(s, 0);
  for (size_t qi = 0; qi < n; ++qi) {
    if (valid[qi] == 0) continue;
    MergeQuery(batch[qi], &partial[qi * s], s, &merged[qi]);
    for (uint32_t si = 0; si < s; ++si) {
      const QueryResult& part = partial[qi * s + si];
      ++shard_queries[si];
      shard_ios[si] += part.stats.random_ios;
      shard_nodes[si] += part.trace.nodes_visited();
    }
  }

  report_ = BatchReport{};
  report_.queries = n;
  report_.wall_ms = batch_timer.ElapsedMs();
  std::vector<double> latencies;
  latencies.reserve(n);
  for (size_t qi = 0; qi < n; ++qi) {
    if (valid[qi] == 0) continue;
    report_.stats += merged[qi].stats;
    report_.trace += merged[qi].trace;
    latencies.push_back(merged[qi].elapsed_us);
  }
  std::sort(latencies.begin(), latencies.end());
  report_.p50_us = PercentileUs(latencies, 50);
  report_.p95_us = PercentileUs(latencies, 95);
  report_.p99_us = PercentileUs(latencies, 99);

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    reg.GetCounter("shard.queries")->Increment(n);
    reg.GetCounter("shard.fanout_tasks")->Increment(n * s);
    for (uint32_t si = 0; si < s; ++si) {
      const std::string prefix = "shard." + std::to_string(si) + ".";
      reg.GetCounter(prefix + "queries")->Increment(shard_queries[si]);
      reg.GetCounter(prefix + "random_ios")->Increment(shard_ios[si]);
      reg.GetCounter(prefix + "nodes_visited")->Increment(shard_nodes[si]);
    }
    obs::Histogram* latency = reg.GetHistogram("shard.query_latency_us");
    for (const double us : latencies) latency->Observe(us);
  }
  return merged;
}

QueryResult QueryRouter::RunOne(const QueryRequest& request) {
  std::vector<QueryResult> results = Run({request});
  return std::move(results.front());
}

}  // namespace sgtree
