#include "shard/query_router.h"

#include <algorithm>
#include <string>
#include <utility>

#include "exec/index_backend.h"
#include "obs/percentile.h"
#include "sgtree/search.h"
#include "static/static_tree_backend.h"

namespace sgtree {
namespace {

bool IsKnn(QueryType type) {
  return type == QueryType::kKnn || type == QueryType::kBestFirstKnn;
}

// Gathers one query's per-shard answers into `out` (whose error field is
// already clear): values are merged under the same canonical orders the
// single-tree search emits, counters are summed, and the service time is
// the slowest shard task.
void MergeQuery(const QueryRequest& request, const QueryResult* parts,
                uint32_t num_shards, QueryResult* out) {
  size_t total_neighbors = 0;
  size_t total_ids = 0;
  for (uint32_t i = 0; i < num_shards; ++i) {
    total_neighbors += parts[i].neighbors.size();
    total_ids += parts[i].ids.size();
  }
  out->neighbors.reserve(total_neighbors);
  out->ids.reserve(total_ids);
  for (uint32_t i = 0; i < num_shards; ++i) {
    out->neighbors.insert(out->neighbors.end(), parts[i].neighbors.begin(),
                          parts[i].neighbors.end());
    out->ids.insert(out->ids.end(), parts[i].ids.begin(),
                    parts[i].ids.end());
    out->stats += parts[i].stats;
    out->trace += parts[i].trace;
    out->elapsed_us = std::max(out->elapsed_us, parts[i].elapsed_us);
  }
  // Tids are unique across shards (the index partitions by tid), so these
  // sorts see no equal keys and the orders are total.
  std::sort(out->neighbors.begin(), out->neighbors.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.tid < b.tid;
            });
  std::sort(out->ids.begin(), out->ids.end());
  if (IsKnn(request.type) && out->neighbors.size() > request.k) {
    // Every shard over-answers with its local top-k; the global answer is
    // the k best of the union.
    out->neighbors.resize(request.k);
  }
}

}  // namespace

QueryRouter::QueryRouter(const ShardedIndex& index, QueryExecutor* executor,
                         const QueryRouterOptions& options)
    : index_(&index), executor_(executor), options_(options) {
  if (options_.pool_shards > 0) {
    shared_pool_ = std::make_unique<ShardedBufferPool>(options_.buffer_pages,
                                                       options_.pool_shards);
    return;
  }
  const uint32_t lanes = executor_->num_threads();
  worker_pools_.reserve(lanes);
  for (uint32_t i = 0; i < lanes; ++i) {
    worker_pools_.push_back(
        std::make_unique<BufferPool>(options_.buffer_pages));
  }
}

PageCache* QueryRouter::PoolFor(uint32_t worker_id) {
  if (shared_pool_ != nullptr) return shared_pool_.get();
  return worker_pools_[worker_id].get();
}

void QueryRouter::RunSlice(const std::vector<QueryRequest>& batch,
                           uint32_t si, size_t q_begin, size_t q_end,
                           uint32_t worker_id,
                           const std::vector<uint8_t>& valid,
                           std::vector<SharedPruneBound>* bounds,
                           std::vector<QueryResult>* merged) {
  const uint32_t s = index_->num_shards();
  PageCache* pool = PoolFor(worker_id);
  const bool private_pool = shared_pool_ == nullptr;
  // Default protocol: the slice starts cold on its shard, then its queries
  // warm the pool for each other — one Clear per slice, not per sub-query.
  if (private_pool && !options_.cold_per_subquery) pool->Clear();
  // Static-mode shards answer through the StaticTreeBackend; both backends
  // instantiate the same search cores, so the slice's results (values,
  // counters, and traces) are identical either way.
  const bool is_static = index_->static_mode();
  for (size_t qi = q_begin; qi < q_end; ++qi) {
    if (valid[qi] == 0) continue;
    const QueryRequest& request = batch[qi];
    if (private_pool && options_.cold_per_subquery) pool->Clear();
    SharedPruneBound* bound = options_.shared_knn_bound && IsKnn(request.type)
                                  ? &(*bounds)[qi]
                                  : nullptr;
    if (is_static) {
      ExecuteInto(StaticTreeBackend(index_->static_shard(si), bound), request,
                  pool, &partial_[qi * s + si]);
    } else {
      ExecuteInto(SgTreeBackend(index_->shard(si), bound), request, pool,
                  &partial_[qi * s + si]);
    }
    if (options_.overlap_merge &&
        remaining_[qi].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // This lane just finished qi's last outstanding shard part: gather
      // immediately, overlapping the merge with other lanes' scatter. The
      // acq_rel countdown makes every other lane's part visible here, and
      // exactly one lane can observe the count hit zero.
      MergeQuery(request, &partial_[qi * s], s, &(*merged)[qi]);
    }
  }
}

std::vector<QueryResult> QueryRouter::Run(
    const std::vector<QueryRequest>& batch) {
  const size_t n = batch.size();
  const uint32_t s = index_->num_shards();
  std::vector<QueryResult> merged(n);
  std::vector<uint8_t> valid(n, 0);
  uint64_t rejected = 0;
  for (size_t i = 0; i < n; ++i) {
    merged[i].error = ValidateRequest(batch[i]);
    valid[i] = merged[i].ok() ? 1 : 0;
    if (valid[i] == 0) ++rejected;
  }

  // Scatter scratch: the partial matrix and the per-query countdowns are
  // members recycled across batches — steady state reuses every slot's
  // buffers instead of allocating n*s results per Run.
  if (partial_.size() < n * s) partial_.resize(n * s);
  if (remaining_capacity_ < n) {
    remaining_ = std::make_unique<std::atomic<uint32_t>[]>(n);
    remaining_capacity_ = n;
  }
  if (options_.overlap_merge) {
    for (size_t qi = 0; qi < n; ++qi) {
      remaining_[qi].store(s, std::memory_order_relaxed);
    }
  }
  std::vector<SharedPruneBound> bounds(options_.shared_knn_bound ? n : 0);

  Timer batch_timer;
  if (options_.shard_major) {
    // A task is one shard crossed with a block of queries. Auto block
    // sizing aims at ~8 slices per lane in total, so the executor's
    // chunked claiming and stealing still have enough grains to balance
    // cost skew, while dispatch and pool setup amortize over the block.
    size_t block = options_.queries_per_task;
    if (block == 0) {
      const size_t lanes = executor_->num_threads();
      const size_t target_slices_per_shard =
          std::max<size_t>(1, (8 * lanes + s - 1) / s);
      block = std::max<size_t>(
          1, (n + target_slices_per_shard - 1) / target_slices_per_shard);
    }
    const size_t num_blocks = n == 0 ? 0 : (n + block - 1) / block;
    // Shard-major task order (all of shard 0's blocks, then shard 1's...)
    // keeps one lane's consecutive slices on one shard — the contiguous
    // per-lane ranges of the executor then give each lane shard affinity
    // for free.
    executor_->ParallelApply(
        static_cast<size_t>(s) * num_blocks,
        [&](size_t task, uint32_t worker_id) {
          const auto si = static_cast<uint32_t>(task / num_blocks);
          const size_t b = task % num_blocks;
          const size_t q_begin = b * block;
          const size_t q_end = std::min(n, q_begin + block);
          RunSlice(batch, si, q_begin, q_end, worker_id, valid, &bounds,
                   &merged);
        });
  } else {
    // Legacy grid: one task per (query, shard), query-major so a serial
    // executor still visits a query's shards back to back (the shared
    // bound tightens soonest that way). Kept for the bench ablation.
    executor_->ParallelApply(n * s, [&](size_t task, uint32_t worker_id) {
      const size_t qi = task / s;
      const auto si = static_cast<uint32_t>(task % s);
      RunSlice(batch, si, qi, qi + 1, worker_id, valid, &bounds, &merged);
    });
  }
  if (!options_.overlap_merge) {
    for (size_t qi = 0; qi < n; ++qi) {
      if (valid[qi] == 0) continue;
      MergeQuery(batch[qi], &partial_[qi * s], s, &merged[qi]);
    }
  }

  report_ = BatchReport{};
  report_.queries = n;
  report_.rejected = rejected;
  std::vector<double> latencies;
  latencies.reserve(n);
  for (size_t qi = 0; qi < n; ++qi) {
    if (valid[qi] == 0) continue;
    report_.stats += merged[qi].stats;
    report_.trace += merged[qi].trace;
    latencies.push_back(merged[qi].elapsed_us);
    // task_us sums the per-(query, shard) parts, not the merged max: it is
    // the total backend service time the lanes had to absorb.
    for (uint32_t si = 0; si < s; ++si) {
      report_.task_us += partial_[qi * s + si].elapsed_us;
    }
  }
  report_.wall_ms = batch_timer.ElapsedMs();
  std::sort(latencies.begin(), latencies.end());
  report_.p50_us = obs::NearestRankPercentile(latencies, 50);
  report_.p95_us = obs::NearestRankPercentile(latencies, 95);
  report_.p99_us = obs::NearestRankPercentile(latencies, 99);

  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    reg.GetCounter("shard.queries")->Increment(n);
    reg.GetCounter("shard.rejected")->Increment(rejected);
    reg.GetCounter("shard.fanout_tasks")->Increment((n - rejected) * s);
    for (uint32_t si = 0; si < s; ++si) {
      uint64_t shard_queries = 0;
      uint64_t shard_ios = 0;
      uint64_t shard_nodes = 0;
      for (size_t qi = 0; qi < n; ++qi) {
        if (valid[qi] == 0) continue;
        const QueryResult& part = partial_[qi * s + si];
        ++shard_queries;
        shard_ios += part.stats.random_ios;
        shard_nodes += part.trace.nodes_visited();
      }
      const std::string prefix = "shard." + std::to_string(si) + ".";
      reg.GetCounter(prefix + "queries")->Increment(shard_queries);
      reg.GetCounter(prefix + "random_ios")->Increment(shard_ios);
      reg.GetCounter(prefix + "nodes_visited")->Increment(shard_nodes);
    }
    obs::Histogram* latency = reg.GetHistogram("shard.query_latency_us");
    for (const double us : latencies) latency->Observe(us);
  }
  return merged;
}

QueryResult QueryRouter::RunOne(const QueryRequest& request) {
  std::vector<QueryResult> results = Run({request});
  return std::move(results.front());
}

}  // namespace sgtree
