#ifndef SGTREE_INVERTED_INVERTED_INDEX_H_
#define SGTREE_INVERTED_INVERTED_INDEX_H_

#include <cstdint>
#include <vector>

#include "baseline/linear_scan.h"
#include "common/stats.h"
#include "data/transaction.h"
#include "storage/page.h"
#include "storage/query_context.h"

namespace sgtree {

/// Inverted-file index over set data: one posting list (ascending tids) per
/// item. This is the comparator the paper's related work points at —
/// Helmer & Moerkotte [14] show that set *equality and subset/superset*
/// queries are best processed by inverted files, while the SG-tree is the
/// structure of choice for *similarity* search. Implemented here so the
/// benchmark harness can demonstrate both halves of that claim.
///
/// Queries supported:
///  - Superset (containment): transactions containing every query item =
///    intersection of the query items' posting lists (shortest first).
///  - Subset: transactions contained in the query = transactions whose
///    occurrence count over the query's posting lists equals their size.
///  - Hamming NN / k-NN / range: exact, via overlap-count accumulation over
///    the query's posting lists; transactions sharing no item are covered
///    by the |q| + |t| fallback using the size-sorted transaction list.
///
/// I/O accounting: reading item i's posting list costs
/// ceil(bytes / page_size) random I/Os, 8 bytes per posting.
class InvertedIndex {
 public:
  explicit InvertedIndex(const Dataset& dataset,
                         uint32_t page_size = kDefaultPageSize);

  /// Appends a transaction (posting lists stay sorted as tids grow; out-of-
  /// order tids are inserted in position).
  void Insert(const Transaction& txn);

  size_t size() const { return sizes_.size(); }
  uint32_t num_items() const {
    return static_cast<uint32_t>(postings_.size());
  }

  // The context forms additionally fill the per-query QueryTrace: posting
  // lists count as leaf nodes, their simulated page reads as buffer misses,
  // and candidate accumulation as verification (the index has no signature
  // pruning, so the subtree counters stay zero). The QueryStats* forms are
  // shorthand for a context carrying only stats.

  /// Transactions containing every item of `query_items` (sorted tids).
  std::vector<uint64_t> Containing(const std::vector<ItemId>& query_items,
                                   QueryStats* stats = nullptr) const;
  std::vector<uint64_t> Containing(const std::vector<ItemId>& query_items,
                                   const QueryContext& ctx) const;

  /// Non-empty transactions whose items are all in `query_items`.
  std::vector<uint64_t> ContainedIn(const std::vector<ItemId>& query_items,
                                    QueryStats* stats = nullptr) const;
  std::vector<uint64_t> ContainedIn(const std::vector<ItemId>& query_items,
                                    const QueryContext& ctx) const;

  /// Exact Hamming k-NN, ascending (distance, tid).
  std::vector<Neighbor> KNearest(const std::vector<ItemId>& query_items,
                                 uint32_t k,
                                 QueryStats* stats = nullptr) const;
  std::vector<Neighbor> KNearest(const std::vector<ItemId>& query_items,
                                 uint32_t k, const QueryContext& ctx) const;

  /// Exact Hamming range query, ascending (distance, tid).
  std::vector<Neighbor> Range(const std::vector<ItemId>& query_items,
                              double epsilon,
                              QueryStats* stats = nullptr) const;
  std::vector<Neighbor> Range(const std::vector<ItemId>& query_items,
                              double epsilon, const QueryContext& ctx) const;

 private:
  struct SizeEntry {
    uint32_t size;
    uint64_t tid;
    bool operator<(const SizeEntry& other) const {
      return size != other.size ? size < other.size : tid < other.tid;
    }
  };

  /// Dense tid -> index mapping is not assumed; candidates are accumulated
  /// in a hash map keyed by tid.
  void ChargeList(ItemId item, const QueryContext& ctx) const;

  uint32_t page_size_;
  std::vector<std::vector<uint64_t>> postings_;  // Per item, sorted tids.
  std::vector<uint64_t> tids_;                   // Insertion order.
  std::vector<uint32_t> sizes_;                  // Parallel to tids_.
  std::vector<SizeEntry> by_size_;               // Sorted by (size, tid).
};

}  // namespace sgtree

#endif  // SGTREE_INVERTED_INVERTED_INDEX_H_
