#include "inverted/inverted_index.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/check.h"

namespace sgtree {

InvertedIndex::InvertedIndex(const Dataset& dataset, uint32_t page_size)
    : page_size_(page_size), postings_(dataset.num_items) {
  for (const Transaction& txn : dataset.transactions) {
    Insert(txn);
  }
}

void InvertedIndex::Insert(const Transaction& txn) {
  for (ItemId item : txn.items) {
    SGTREE_ASSERT(item < postings_.size());
    auto& list = postings_[item];
    if (list.empty() || list.back() < txn.tid) {
      list.push_back(txn.tid);
    } else {
      list.insert(std::lower_bound(list.begin(), list.end(), txn.tid),
                  txn.tid);
    }
  }
  tids_.push_back(txn.tid);
  sizes_.push_back(static_cast<uint32_t>(txn.items.size()));
  const SizeEntry entry{static_cast<uint32_t>(txn.items.size()), txn.tid};
  by_size_.insert(std::lower_bound(by_size_.begin(), by_size_.end(), entry),
                  entry);
}

void InvertedIndex::ChargeList(ItemId item, const QueryContext& ctx) const {
  ctx.CountNode(/*leaf=*/true);
  const uint64_t bytes = 8 * postings_[item].size();
  ctx.ChargeSimulatedIo(std::max<uint64_t>(1, (bytes + page_size_ - 1) /
                                                  page_size_));
}

std::vector<uint64_t> InvertedIndex::Containing(
    const std::vector<ItemId>& query_items, QueryStats* stats) const {
  return Containing(query_items, QueryContext{nullptr, stats, nullptr});
}

std::vector<uint64_t> InvertedIndex::Containing(
    const std::vector<ItemId>& query_items, const QueryContext& ctx) const {
  if (query_items.empty()) {
    std::vector<uint64_t> all = tids_;
    std::sort(all.begin(), all.end());
    return all;
  }
  // Intersect starting from the shortest posting list.
  ItemId shortest = query_items.front();
  for (ItemId item : query_items) {
    if (postings_[item].size() < postings_[shortest].size()) {
      shortest = item;
    }
  }
  for (ItemId item : query_items) ChargeList(item, ctx);

  std::vector<uint64_t> result;
  for (uint64_t tid : postings_[shortest]) {
    bool in_all = true;
    for (ItemId item : query_items) {
      if (item == shortest) continue;
      const auto& list = postings_[item];
      if (!std::binary_search(list.begin(), list.end(), tid)) {
        in_all = false;
        break;
      }
    }
    if (in_all) result.push_back(tid);
  }
  ctx.CountVerified(postings_[shortest].size());
  ctx.TraceResults(result.size());
  ctx.TraceFalseDrops(postings_[shortest].size() - result.size());
  return result;  // Already ascending (shortest list is sorted).
}

std::vector<uint64_t> InvertedIndex::ContainedIn(
    const std::vector<ItemId>& query_items, QueryStats* stats) const {
  return ContainedIn(query_items, QueryContext{nullptr, stats, nullptr});
}

std::vector<uint64_t> InvertedIndex::ContainedIn(
    const std::vector<ItemId>& query_items, const QueryContext& ctx) const {
  // Count, per candidate, how many of its items fall inside the query; a
  // transaction is a subset iff all of its items do.
  std::unordered_map<uint64_t, uint32_t> hits;
  for (ItemId item : query_items) {
    ChargeList(item, ctx);
    for (uint64_t tid : postings_[item]) ++hits[tid];
  }
  ctx.CountVerified(hits.size());

  std::unordered_map<uint64_t, uint32_t> size_of;
  size_of.reserve(tids_.size());
  for (size_t i = 0; i < tids_.size(); ++i) size_of[tids_[i]] = sizes_[i];

  std::vector<uint64_t> result;
  for (const auto& [tid, count] : hits) {
    if (count == size_of[tid]) result.push_back(tid);
  }
  std::sort(result.begin(), result.end());
  ctx.TraceResults(result.size());
  ctx.TraceFalseDrops(hits.size() - result.size());
  return result;
}

std::vector<Neighbor> InvertedIndex::KNearest(
    const std::vector<ItemId>& query_items, uint32_t k,
    QueryStats* stats) const {
  return KNearest(query_items, k, QueryContext{nullptr, stats, nullptr});
}

std::vector<Neighbor> InvertedIndex::KNearest(
    const std::vector<ItemId>& query_items, uint32_t k,
    const QueryContext& ctx) const {
  std::vector<Neighbor> heap;  // Max-heap under less.
  auto less = [](const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.tid < b.tid;
  };
  auto tau = [&]() {
    return heap.size() < k ? std::numeric_limits<double>::infinity()
                           : heap.front().distance;
  };
  auto offer = [&](const Neighbor& candidate) {
    if (heap.size() < k) {
      heap.push_back(candidate);
      std::push_heap(heap.begin(), heap.end(), less);
    } else if (less(candidate, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), less);
      heap.back() = candidate;
      std::push_heap(heap.begin(), heap.end(), less);
    }
  };
  if (k == 0 || tids_.empty()) return heap;

  // Phase 1: overlap accumulation over the query's posting lists.
  std::unordered_map<uint64_t, uint32_t> overlap;
  for (ItemId item : query_items) {
    ChargeList(item, ctx);
    for (uint64_t tid : postings_[item]) ++overlap[tid];
  }
  std::unordered_map<uint64_t, uint32_t> size_of;
  size_of.reserve(tids_.size());
  for (size_t i = 0; i < tids_.size(); ++i) size_of[tids_[i]] = sizes_[i];

  const auto q_size = static_cast<double>(query_items.size());
  for (const auto& [tid, common] : overlap) {
    offer({tid, q_size + size_of[tid] - 2.0 * common});
  }
  ctx.CountVerified(overlap.size());

  // Phase 2: transactions sharing nothing with the query have distance
  // |q| + |t|; walk them in ascending size until they cannot improve.
  for (const SizeEntry& entry : by_size_) {
    const double d = q_size + entry.size;
    // Strict comparison: distance ties must still be offered so the
    // (distance, tid) tie-break matches the linear scan exactly.
    if (d > tau()) break;
    if (overlap.count(entry.tid) != 0) continue;
    offer({entry.tid, d});
    ctx.CountVerified(1);
  }

  std::sort(heap.begin(), heap.end(), less);
  ctx.TraceResults(heap.size());
  return heap;
}

std::vector<Neighbor> InvertedIndex::Range(
    const std::vector<ItemId>& query_items, double epsilon,
    QueryStats* stats) const {
  return Range(query_items, epsilon, QueryContext{nullptr, stats, nullptr});
}

std::vector<Neighbor> InvertedIndex::Range(
    const std::vector<ItemId>& query_items, double epsilon,
    const QueryContext& ctx) const {
  std::vector<Neighbor> result;
  std::unordered_map<uint64_t, uint32_t> overlap;
  for (ItemId item : query_items) {
    ChargeList(item, ctx);
    for (uint64_t tid : postings_[item]) ++overlap[tid];
  }
  std::unordered_map<uint64_t, uint32_t> size_of;
  size_of.reserve(tids_.size());
  for (size_t i = 0; i < tids_.size(); ++i) size_of[tids_[i]] = sizes_[i];

  const auto q_size = static_cast<double>(query_items.size());
  uint64_t matched = 0;
  for (const auto& [tid, common] : overlap) {
    const double d = q_size + size_of[tid] - 2.0 * common;
    if (d <= epsilon) {
      result.push_back({tid, d});
      ++matched;
    }
  }
  ctx.CountVerified(overlap.size());
  ctx.TraceFalseDrops(overlap.size() - matched);
  for (const SizeEntry& entry : by_size_) {
    const double d = q_size + entry.size;
    if (d > epsilon) break;
    if (overlap.count(entry.tid) != 0) continue;
    result.push_back({entry.tid, d});
    ++matched;
    ctx.CountVerified(1);
  }
  ctx.TraceResults(matched);
  std::sort(result.begin(), result.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.tid < b.tid;
            });
  return result;
}

}  // namespace sgtree
