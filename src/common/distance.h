#ifndef SGTREE_COMMON_DISTANCE_H_
#define SGTREE_COMMON_DISTANCE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "common/signature.h"
#include "common/signature_ops.h"

namespace sgtree {

/// Set-theoretic similarity metrics supported by the SG-tree search
/// algorithms. Hamming is the paper's primary metric; Jaccard and Dice are
/// the Section 6 (future work) extensions.
enum class Metric {
  kHamming,  // |q XOR t| = |q \ t| + |t \ q|
  kJaccard,  // 1 - |q AND t| / |q OR t|
  kDice,     // 1 - 2 |q AND t| / (|q| + |t|)
  kCosine,   // 1 - |q AND t| / sqrt(|q| * |t|)
};

std::string MetricName(Metric metric);

/// Exact distance between two data signatures under `metric`.
/// Hamming distances are integral; Jaccard/Dice are in [0, 1]. The distance
/// between two empty sets is 0 under every metric.
double Distance(const Signature& a, const Signature& b, Metric metric);

/// Lower bound on Distance(q, t) for every transaction t indexed below a
/// directory entry with signature `entry`, exploiting the coverage property
/// (t's signature is contained in `entry`).
///
/// Hamming: every item of q missing from `entry` is missing from every t
/// below it, so mindist = |q AND NOT entry|.
///
/// Jaccard: |q AND t| <= c := |q AND entry| and |q OR t| >= |q|, so
/// similarity <= c / |q| and mindist = 1 - c / |q| (0 for an empty q).
///
/// Dice: |q AND t| <= c and |t| >= |q AND t|, giving
/// mindist = 1 - 2c / (|q| + c) (the maximizing t is the c shared items).
///
/// Cosine: similarity c' / sqrt(|q| |t|) with c' <= c and |t| >= c' is
/// maximized at t = the c shared items, giving mindist = 1 - sqrt(c / |q|).
///
/// `fixed_dimensionality` (Section 6 optimization): when every indexed
/// transaction has exactly d items (categorical data with d attributes),
/// Hamming distance is |q| + d - 2 |q AND t| >= |q| + d - 2 |q AND entry|,
/// a strictly tighter bound than the generic one. Pass d, or 0 when the
/// collection does not have fixed-size transactions.
double MinDistBound(const Signature& query, const Signature& entry,
                    Metric metric, uint32_t fixed_dimensionality = 0);

/// Generalization of the Section 6 optimization from fixed dimensionality
/// to arbitrary *transaction-size statistics*: when every transaction below
/// the entry is known to have between `min_area` and `max_area` items, the
/// bound tightens whenever the query's overlap with the entry falls outside
/// that window. With min_area == max_area == d this is exactly the paper's
/// fixed-dimensionality bound; with (0, num_bits) it reduces to the generic
/// one.
///
/// Hamming derivation: dist = |q| + s - 2m with s = |t| in [min_area,
/// max_area] and m = |q AND t| <= min(c, s), c = |q AND entry|. Minimizing
/// over (s, m) gives
///   c <  min_area: |q| + min_area - 2c
///   c >  max_area: |q| - max_area
///   otherwise:     |q| - c          (the generic bound)
/// The similarity metrics tighten analogously (see the implementation).
double MinDistBoundAreaStats(const Signature& query, const Signature& entry,
                             Metric metric, uint32_t min_area,
                             uint32_t max_area);

// ---------------------------------------------------------------------------
// Implementation templates, generic over signature-like types (Signature or
// the zero-copy SignatureView of the static mmap'ed tree). These ARE the
// implementation: the Signature overloads above delegate here, so both the
// dynamic and the static search path execute the same floating-point
// expressions on the same integer inputs — which is what makes static-tree
// answers byte-identical to dynamic-tree answers, IEEE rounding included.
// ---------------------------------------------------------------------------

/// Generic form of Distance(); see that declaration for the semantics.
template <typename A, typename B>
double DistanceOf(const A& a, const B& b, Metric metric) {
  switch (metric) {
    case Metric::kHamming:
      return static_cast<double>(sig::XorCount(a, b));
    case Metric::kJaccard: {
      const uint32_t uni = sig::UnionCount(a, b);
      if (uni == 0) return 0.0;  // Both empty: identical sets.
      const uint32_t inter = sig::IntersectCount(a, b);
      return 1.0 - static_cast<double>(inter) / uni;
    }
    case Metric::kDice: {
      const uint32_t total = sig::Area(a) + sig::Area(b);
      if (total == 0) return 0.0;
      const uint32_t inter = sig::IntersectCount(a, b);
      return 1.0 - 2.0 * inter / total;
    }
    case Metric::kCosine: {
      const uint32_t area_a = sig::Area(a);
      const uint32_t area_b = sig::Area(b);
      if (area_a == 0 && area_b == 0) return 0.0;
      if (area_a == 0 || area_b == 0) return 1.0;
      const uint32_t inter = sig::IntersectCount(a, b);
      return 1.0 - inter / std::sqrt(static_cast<double>(area_a) * area_b);
    }
  }
  return 0.0;
}

/// Generic form of MinDistBoundAreaStats(); see that declaration and the
/// header comment above for the per-metric derivations.
template <typename Q, typename E>
double MinDistBoundAreaStatsOf(const Q& query, const E& entry, Metric metric,
                               uint32_t min_area, uint32_t max_area) {
  const uint32_t q_area = sig::Area(query);
  const uint32_t c = sig::IntersectCount(query, entry);
  // Maximum achievable overlap given that |t| <= max_area.
  const uint32_t cc = std::min(c, max_area);

  switch (metric) {
    case Metric::kHamming: {
      // dist = |q| + |t| - 2 |q AND t|, minimized over |t| in [min, max]
      // and |q AND t| <= min(c, |t|); see the header for the derivation.
      int64_t bound;
      if (c < min_area) {
        bound = static_cast<int64_t>(q_area) + min_area - 2 * int64_t{c};
      } else if (c > max_area) {
        bound = static_cast<int64_t>(q_area) - max_area;
      } else {
        bound = static_cast<int64_t>(q_area) - c;  // Generic bound.
      }
      return static_cast<double>(std::max<int64_t>(bound, 0));
    }
    case Metric::kJaccard: {
      if (q_area == 0) return 0.0;  // An empty transaction below could tie.
      // similarity = |q AND t| / |q OR t| with |q OR t| = |q| + |t| -
      // |q AND t| >= |q| + max(min_area, cc) - cc.
      const double denom = q_area + (min_area > cc ? min_area - cc : 0u);
      return 1.0 - cc / denom;
    }
    case Metric::kDice: {
      if (q_area == 0) return 0.0;
      // similarity = 2 |q AND t| / (|q| + |t|), |t| >= max(min_area, cc).
      return 1.0 - 2.0 * cc / (q_area + std::max(min_area, cc));
    }
    case Metric::kCosine: {
      if (q_area == 0) return 0.0;
      if (cc == 0) return 1.0;
      // similarity = |q AND t| / sqrt(|q| |t|), |t| >= max(min_area, cc).
      return 1.0 - cc / std::sqrt(static_cast<double>(q_area) *
                                  std::max(min_area, cc));
    }
  }
  return 0.0;
}

}  // namespace sgtree

#endif  // SGTREE_COMMON_DISTANCE_H_
