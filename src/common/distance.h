#ifndef SGTREE_COMMON_DISTANCE_H_
#define SGTREE_COMMON_DISTANCE_H_

#include <cstdint>
#include <string>

#include "common/signature.h"

namespace sgtree {

/// Set-theoretic similarity metrics supported by the SG-tree search
/// algorithms. Hamming is the paper's primary metric; Jaccard and Dice are
/// the Section 6 (future work) extensions.
enum class Metric {
  kHamming,  // |q XOR t| = |q \ t| + |t \ q|
  kJaccard,  // 1 - |q AND t| / |q OR t|
  kDice,     // 1 - 2 |q AND t| / (|q| + |t|)
  kCosine,   // 1 - |q AND t| / sqrt(|q| * |t|)
};

std::string MetricName(Metric metric);

/// Exact distance between two data signatures under `metric`.
/// Hamming distances are integral; Jaccard/Dice are in [0, 1]. The distance
/// between two empty sets is 0 under every metric.
double Distance(const Signature& a, const Signature& b, Metric metric);

/// Lower bound on Distance(q, t) for every transaction t indexed below a
/// directory entry with signature `entry`, exploiting the coverage property
/// (t's signature is contained in `entry`).
///
/// Hamming: every item of q missing from `entry` is missing from every t
/// below it, so mindist = |q AND NOT entry|.
///
/// Jaccard: |q AND t| <= c := |q AND entry| and |q OR t| >= |q|, so
/// similarity <= c / |q| and mindist = 1 - c / |q| (0 for an empty q).
///
/// Dice: |q AND t| <= c and |t| >= |q AND t|, giving
/// mindist = 1 - 2c / (|q| + c) (the maximizing t is the c shared items).
///
/// Cosine: similarity c' / sqrt(|q| |t|) with c' <= c and |t| >= c' is
/// maximized at t = the c shared items, giving mindist = 1 - sqrt(c / |q|).
///
/// `fixed_dimensionality` (Section 6 optimization): when every indexed
/// transaction has exactly d items (categorical data with d attributes),
/// Hamming distance is |q| + d - 2 |q AND t| >= |q| + d - 2 |q AND entry|,
/// a strictly tighter bound than the generic one. Pass d, or 0 when the
/// collection does not have fixed-size transactions.
double MinDistBound(const Signature& query, const Signature& entry,
                    Metric metric, uint32_t fixed_dimensionality = 0);

/// Generalization of the Section 6 optimization from fixed dimensionality
/// to arbitrary *transaction-size statistics*: when every transaction below
/// the entry is known to have between `min_area` and `max_area` items, the
/// bound tightens whenever the query's overlap with the entry falls outside
/// that window. With min_area == max_area == d this is exactly the paper's
/// fixed-dimensionality bound; with (0, num_bits) it reduces to the generic
/// one.
///
/// Hamming derivation: dist = |q| + s - 2m with s = |t| in [min_area,
/// max_area] and m = |q AND t| <= min(c, s), c = |q AND entry|. Minimizing
/// over (s, m) gives
///   c <  min_area: |q| + min_area - 2c
///   c >  max_area: |q| - max_area
///   otherwise:     |q| - c          (the generic bound)
/// The similarity metrics tighten analogously (see the implementation).
double MinDistBoundAreaStats(const Signature& query, const Signature& entry,
                             Metric metric, uint32_t min_area,
                             uint32_t max_area);

}  // namespace sgtree

#endif  // SGTREE_COMMON_DISTANCE_H_
