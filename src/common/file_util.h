#ifndef SGTREE_COMMON_FILE_UTIL_H_
#define SGTREE_COMMON_FILE_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sgtree {

/// Crash-atomically replaces the contents of `path` with `data`: the bytes
/// are written to a sibling temporary file, fsynced, renamed over `path`,
/// and the directory entry is fsynced. A crash at any point leaves either
/// the old file or the complete new one — never a truncated hybrid.
/// Returns false with `*error` set (when non-null) on failure.
bool AtomicWriteFile(const std::string& path,
                     const std::vector<uint8_t>& data,
                     std::string* error = nullptr);

}  // namespace sgtree

#endif  // SGTREE_COMMON_FILE_UTIL_H_
