#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace sgtree {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : state_) lane = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  SGTREE_DCHECK(bound != 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint32_t Rng::Poisson(double mean) {
  SGTREE_DCHECK(mean >= 0);
  if (mean <= 0) return 0;
  if (mean > 64) {
    // Normal approximation with continuity correction; adequate for
    // workload-size sampling.
    const double v = Normal(mean, std::sqrt(mean));
    return v <= 0 ? 0 : static_cast<uint32_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  uint32_t k = 0;
  double product = UniformDouble();
  while (product > limit) {
    ++k;
    product *= UniformDouble();
  }
  return k;
}

double Rng::Exponential(double mean) {
  double u = UniformDouble();
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = UniformDouble();
  if (u1 <= 0) u1 = 0x1.0p-53;
  const double u2 = UniformDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace sgtree
