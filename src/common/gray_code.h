#ifndef SGTREE_COMMON_GRAY_CODE_H_
#define SGTREE_COMMON_GRAY_CODE_H_

#include <vector>

#include "common/signature.h"

namespace sgtree {

/// Gray-code ordering of signatures, used for bulk loading (Section 6 of
/// the paper suggests sorting transactions "using gray codes as key", in
/// analogy to space-filling-curve bulk loading of R-trees).
///
/// The reflected binary Gray code of an integer x is g(x) = x XOR (x >> 1).
/// Walking signatures in the order of the *rank* of their bitmap in the Gray
/// sequence places bitmaps that differ in few (low-order) bits near each
/// other, which clusters similar transactions into the same leaves.
///
/// We interpret the signature as a big integer with bit 0 least significant.
/// The rank of a Gray codeword g is the x with g(x) = g, obtained by the
/// prefix-XOR scan x_i = g_i XOR g_{i+1} XOR ... (from the most significant
/// bit down).

/// Returns the Gray-code rank of `sig` as a little-endian word vector (same
/// width as the signature).
std::vector<uint64_t> GrayRank(const Signature& sig);

/// Comparator: true iff GrayRank(a) < GrayRank(b). Avoids materializing the
/// full rank when a prefix decides the comparison.
bool GrayLess(const Signature& a, const Signature& b);

}  // namespace sgtree

#endif  // SGTREE_COMMON_GRAY_CODE_H_
