#ifndef SGTREE_COMMON_SIGNATURE_OPS_H_
#define SGTREE_COMMON_SIGNATURE_OPS_H_

#include <cstddef>
#include <cstdint>

#include "common/bit_ops.h"
#include "common/check.h"

namespace sgtree::sig {

/// Word-level set operations generic over any "signature-like" type — a
/// type exposing `num_bits()` and `words()` (a contiguous range of 64-bit
/// words, low bits first). Both the owning Signature and the zero-copy
/// SignatureView over an mmap'ed static tree qualify, so one implementation
/// serves both representations. The search templates (sgtree/search_core.h)
/// and the shared distance templates (common/distance.h) are written
/// against these, which is what makes the static tree's answers
/// byte-identical to the dynamic tree's: identical integer inputs feed
/// identical floating-point expressions.
///
/// All binary operations require matching widths (checked with
/// SGTREE_DCHECK, like the Signature static methods they generalize).

/// Number of set bits — the signature's "area".
template <typename S>
uint32_t Area(const S& s) {
  uint32_t count = 0;
  for (const uint64_t w : s.words()) count += PopCount(w);
  return count;
}

template <typename S>
bool Empty(const S& s) {
  for (const uint64_t w : s.words()) {
    if (w != 0) return false;
  }
  return true;
}

/// |a AND b| without materializing the intersection.
template <typename A, typename B>
uint32_t IntersectCount(const A& a, const B& b) {
  SGTREE_DCHECK(a.num_bits() == b.num_bits());
  const auto aw = a.words();
  const auto bw = b.words();
  uint32_t count = 0;
  for (size_t i = 0; i < aw.size(); ++i) {
    count += PopCount(aw[i] & bw[i]);
  }
  return count;
}

/// |a XOR b| = Hamming distance between the bitmaps.
template <typename A, typename B>
uint32_t XorCount(const A& a, const B& b) {
  SGTREE_DCHECK(a.num_bits() == b.num_bits());
  const auto aw = a.words();
  const auto bw = b.words();
  uint32_t count = 0;
  for (size_t i = 0; i < aw.size(); ++i) {
    count += PopCount(aw[i] ^ bw[i]);
  }
  return count;
}

/// |a OR b|.
template <typename A, typename B>
uint32_t UnionCount(const A& a, const B& b) {
  SGTREE_DCHECK(a.num_bits() == b.num_bits());
  const auto aw = a.words();
  const auto bw = b.words();
  uint32_t count = 0;
  for (size_t i = 0; i < aw.size(); ++i) {
    count += PopCount(aw[i] | bw[i]);
  }
  return count;
}

/// True iff every bit set in `b` is also set in `a` (`a` covers `b`).
/// Early-exits on the first word with a bit of `b` missing from `a`.
template <typename A, typename B>
bool Contains(const A& a, const B& b) {
  SGTREE_DCHECK(a.num_bits() == b.num_bits());
  const auto aw = a.words();
  const auto bw = b.words();
  for (size_t i = 0; i < aw.size(); ++i) {
    if ((bw[i] & ~aw[i]) != 0) return false;
  }
  return true;
}

/// Same width and identical bits — the generic form of Signature equality.
template <typename A, typename B>
bool Equal(const A& a, const B& b) {
  if (a.num_bits() != b.num_bits()) return false;
  const auto aw = a.words();
  const auto bw = b.words();
  for (size_t i = 0; i < aw.size(); ++i) {
    if (aw[i] != bw[i]) return false;
  }
  return true;
}

}  // namespace sgtree::sig

#endif  // SGTREE_COMMON_SIGNATURE_OPS_H_
