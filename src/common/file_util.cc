#include "common/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace sgtree {
namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message + ": " + std::strerror(errno);
  return false;
}

bool WriteFully(int fd, const uint8_t* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

bool SyncDirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return true;  // Directory not openable here: best effort.
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

bool AtomicWriteFile(const std::string& path,
                     const std::vector<uint8_t>& data, std::string* error) {
  if (error != nullptr) error->clear();
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return Fail(error, "cannot create " + tmp);
  if (!WriteFully(fd, data.data(), data.size())) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Fail(error, "cannot write " + tmp);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Fail(error, "cannot sync " + tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Fail(error, "cannot close " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Fail(error, "cannot rename " + tmp + " over " + path);
  }
  if (!SyncDirOf(path)) return Fail(error, "cannot sync directory of " + path);
  return true;
}

}  // namespace sgtree
