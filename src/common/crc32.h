#ifndef SGTREE_COMMON_CRC32_H_
#define SGTREE_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sgtree {

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected). Used to checksum
/// durable bytes: WAL record payloads, page-file slots, and the page-file
/// header. Castagnoli has better error-detection properties than the zlib
/// polynomial for the short records a log produces, and is what modern
/// storage engines checksum with.
///
/// `seed` chains computations: Crc32c(b, n2, Crc32c(a, n1)) equals the CRC
/// of the concatenation a|b.
uint32_t Crc32c(const uint8_t* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(const std::vector<uint8_t>& data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace sgtree

#endif  // SGTREE_COMMON_CRC32_H_
