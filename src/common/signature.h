#ifndef SGTREE_COMMON_SIGNATURE_H_
#define SGTREE_COMMON_SIGNATURE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bit_ops.h"

namespace sgtree {

/// A fixed-width bitmap ("signature") over the item dictionary.
///
/// A transaction {a, c} over a dictionary of six items is represented by the
/// signature 101000 (one bit per item). A group of transactions is
/// represented by the bitwise OR of the member signatures (Definition 5 of
/// the paper), so a directory signature has a 1 wherever at least one
/// transaction below it contains the corresponding item.
///
/// The "area" of a signature is its number of set bits; it plays the role
/// the MBR area plays in an R-tree.
class Signature {
 public:
  /// An empty signature of width zero. Mostly useful as a placeholder before
  /// assignment; all set operations require matching widths.
  Signature() = default;

  /// An all-zero signature of `num_bits` bits.
  explicit Signature(uint32_t num_bits)
      : num_bits_(num_bits), words_(WordsForBits(num_bits), 0) {}

  /// Builds the signature of a transaction: one set bit per item id. Item
  /// ids must be < `num_bits`.
  static Signature FromItems(std::span<const uint32_t> items,
                             uint32_t num_bits);

  Signature(const Signature&) = default;
  Signature& operator=(const Signature&) = default;
  Signature(Signature&&) = default;
  Signature& operator=(Signature&&) = default;

  uint32_t num_bits() const { return num_bits_; }
  uint32_t num_words() const { return static_cast<uint32_t>(words_.size()); }

  bool Test(uint32_t pos) const {
    return (words_[pos / kBitsPerWord] >> (pos % kBitsPerWord)) & 1;
  }
  void Set(uint32_t pos) {
    words_[pos / kBitsPerWord] |= uint64_t{1} << (pos % kBitsPerWord);
  }
  void Reset(uint32_t pos) {
    words_[pos / kBitsPerWord] &= ~(uint64_t{1} << (pos % kBitsPerWord));
  }
  void Clear();

  /// Number of set bits. This is the signature's "area".
  uint32_t Area() const;

  bool Empty() const;

  /// this |= other. Widths must match.
  void UnionWith(const Signature& other);
  /// this &= other. Widths must match.
  void IntersectWith(const Signature& other);

  /// True iff every bit set in `other` is also set in `*this` (i.e. *this
  /// covers `other`; a directory entry covers every signature below it).
  bool Contains(const Signature& other) const;

  /// Enlargement and area of `a` computed together. ChooseSubtree needs
  /// both for every candidate entry; fusing them halves the passes over the
  /// signature words on the insert hot path.
  struct BoundAndArea {
    uint32_t enlargement = 0;  // |b AND NOT a| = growth of a to cover b.
    uint32_t area = 0;         // |a|.
  };
  static BoundAndArea EnlargementAndArea(const Signature& a,
                                         const Signature& b);

  /// |a AND b| without materializing the intersection.
  static uint32_t IntersectCount(const Signature& a, const Signature& b);
  /// |a AND NOT b|: bits of `a` missing from `b`.
  static uint32_t AndNotCount(const Signature& a, const Signature& b);
  /// |a XOR b| = Hamming distance between the bitmaps.
  static uint32_t XorCount(const Signature& a, const Signature& b);
  /// |a OR b|.
  static uint32_t UnionCount(const Signature& a, const Signature& b);
  /// |a OR b| - |a|: how much `a` must grow to cover `b`.
  static uint32_t Enlargement(const Signature& a, const Signature& b);

  /// Direct access to the backing words (for codecs and hashing).
  std::span<const uint64_t> words() const { return words_; }
  std::span<uint64_t> mutable_words() { return words_; }

  /// The positions of all set bits, ascending.
  std::vector<uint32_t> ToItems() const;

  /// "101000"-style string, bit 0 first. Intended for tests and debugging.
  std::string ToString() const;

  friend bool operator==(const Signature& a, const Signature& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }

 private:
  uint32_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

/// Hash functor so signatures can key unordered containers.
struct SignatureHash {
  size_t operator()(const Signature& s) const;
};

/// A non-owning, zero-copy view of a signature whose words live elsewhere —
/// in practice, inside an mmap'ed static tree image (src/static). Exposes
/// the same `num_bits()` / `words()` surface as Signature, so the generic
/// word-level operations (common/signature_ops.h) and the shared distance
/// templates (common/distance.h) accept either representation.
///
/// The view does not own the words; the backing storage (the mapping or
/// buffer) must outlive every view into it. `words` must point at
/// WordsForBits(num_bits) readable 64-bit words.
class SignatureView {
 public:
  SignatureView() = default;
  SignatureView(uint32_t num_bits, const uint64_t* words)
      : num_bits_(num_bits), words_(words) {}

  uint32_t num_bits() const { return num_bits_; }
  std::span<const uint64_t> words() const {
    return {words_, WordsForBits(num_bits_)};
  }

  bool Test(uint32_t pos) const {
    return (words_[pos / kBitsPerWord] >> (pos % kBitsPerWord)) & 1;
  }

  /// Deep copy into an owning Signature (result materialization).
  Signature ToSignature() const {
    Signature sig(num_bits_);
    const std::span<const uint64_t> src = words();
    std::span<uint64_t> dst = sig.mutable_words();
    for (size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
    return sig;
  }

 private:
  uint32_t num_bits_ = 0;
  const uint64_t* words_ = nullptr;
};

}  // namespace sgtree

#endif  // SGTREE_COMMON_SIGNATURE_H_
