#include "common/crc32.h"

#include <array>

namespace sgtree {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected.

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t size, uint32_t seed) {
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace sgtree
