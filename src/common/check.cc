#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace sgtree::internal {

void CheckFailed(const char* expr, const char* file, int line,
                 const char* detail) {
  if (detail != nullptr && detail[0] != '\0') {
    std::fprintf(stderr, "%s:%d: check failed: %s (%s)\n", file, line, expr,
                 detail);
  } else {
    std::fprintf(stderr, "%s:%d: check failed: %s\n", file, line, expr);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace sgtree::internal
