#ifndef SGTREE_COMMON_ZIPF_H_
#define SGTREE_COMMON_ZIPF_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace sgtree {

/// Zipf-distributed sampler over {0, ..., n-1} with skew parameter `theta`
/// (theta = 0 is uniform; around 0.8-1.0 matches typical categorical value
/// skew). Uses an inverse-CDF table, so construction is O(n) and sampling is
/// O(log n).
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double theta) : cdf_(n) {
    double sum = 0;
    for (uint32_t i = 0; i < n; ++i) {
      sum += 1.0 / Pow(i + 1, theta);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }

  uint32_t Sample(Rng& rng) const {
    const double u = rng.UniformDouble();
    uint32_t lo = 0;
    uint32_t hi = static_cast<uint32_t>(cdf_.size()) - 1;
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  static double Pow(double base, double exp) {
    return exp == 0 ? 1.0 : std::pow(base, exp);
  }

  std::vector<double> cdf_;
};

}  // namespace sgtree

#endif  // SGTREE_COMMON_ZIPF_H_
