#ifndef SGTREE_COMMON_BIT_OPS_H_
#define SGTREE_COMMON_BIT_OPS_H_

#include <bit>
#include <cstdint>

namespace sgtree {

/// Number of bits in one signature word.
inline constexpr uint32_t kBitsPerWord = 64;

/// Number of 64-bit words needed to hold `num_bits` bits.
constexpr uint32_t WordsForBits(uint32_t num_bits) {
  return (num_bits + kBitsPerWord - 1) / kBitsPerWord;
}

/// Population count of a single word.
inline uint32_t PopCount(uint64_t word) {
  return static_cast<uint32_t>(std::popcount(word));
}

/// Mask selecting the valid low bits of the last word of a bitmap with
/// `num_bits` total bits. Returns all-ones when `num_bits` is a multiple of
/// the word size.
constexpr uint64_t TailMask(uint32_t num_bits) {
  const uint32_t rem = num_bits % kBitsPerWord;
  return rem == 0 ? ~uint64_t{0} : ((uint64_t{1} << rem) - 1);
}

}  // namespace sgtree

#endif  // SGTREE_COMMON_BIT_OPS_H_
