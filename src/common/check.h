#ifndef SGTREE_COMMON_CHECK_H_
#define SGTREE_COMMON_CHECK_H_

namespace sgtree::internal {

/// Prints "<file>:<line>: check failed: <expr> (<detail>)" to stderr and
/// aborts. Out of line so the macro expansion stays one cold call.
[[noreturn]] void CheckFailed(const char* expr, const char* file, int line,
                              const char* detail);

}  // namespace sgtree::internal

/// SGTREE_ASSERT(cond) — enabled in every build type.
///
/// Use on mutating and cold paths (insert/erase restructuring, page
/// encode/decode, pool bookkeeping) where a broken invariant would silently
/// corrupt persisted signatures: the check is a handful of instructions and
/// the operation it guards already costs orders of magnitude more. Release
/// builds therefore keep these on, unlike bare assert().
#define SGTREE_ASSERT(cond)                                              \
  (static_cast<bool>(cond)                                               \
       ? static_cast<void>(0)                                            \
       : ::sgtree::internal::CheckFailed(#cond, __FILE__, __LINE__, ""))

/// SGTREE_ASSERT_MSG(cond, detail) — SGTREE_ASSERT with a string-literal
/// explanation appended to the failure report.
#define SGTREE_ASSERT_MSG(cond, detail)                                  \
  (static_cast<bool>(cond)                                               \
       ? static_cast<void>(0)                                            \
       : ::sgtree::internal::CheckFailed(#cond, __FILE__, __LINE__,      \
                                         detail))

/// SGTREE_DCHECK(cond) — debug builds only.
///
/// Use on hot query paths (per-word signature ops, per-entry bounds) where
/// an always-on check would be measurable. Compiles to nothing under NDEBUG
/// without evaluating (or odr-using) the condition.
#ifdef NDEBUG
#define SGTREE_DCHECK(cond) static_cast<void>(sizeof((cond) ? 1 : 0))
#else
#define SGTREE_DCHECK(cond) SGTREE_ASSERT(cond)
#endif

#endif  // SGTREE_COMMON_CHECK_H_
