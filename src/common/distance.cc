#include "common/distance.h"

#include <algorithm>
#include <cmath>

namespace sgtree {

std::string MetricName(Metric metric) {
  switch (metric) {
    case Metric::kHamming:
      return "hamming";
    case Metric::kJaccard:
      return "jaccard";
    case Metric::kDice:
      return "dice";
    case Metric::kCosine:
      return "cosine";
  }
  return "unknown";
}

double Distance(const Signature& a, const Signature& b, Metric metric) {
  switch (metric) {
    case Metric::kHamming:
      return static_cast<double>(Signature::XorCount(a, b));
    case Metric::kJaccard: {
      const uint32_t uni = Signature::UnionCount(a, b);
      if (uni == 0) return 0.0;  // Both empty: identical sets.
      const uint32_t inter = Signature::IntersectCount(a, b);
      return 1.0 - static_cast<double>(inter) / uni;
    }
    case Metric::kDice: {
      const uint32_t total = a.Area() + b.Area();
      if (total == 0) return 0.0;
      const uint32_t inter = Signature::IntersectCount(a, b);
      return 1.0 - 2.0 * inter / total;
    }
    case Metric::kCosine: {
      const uint32_t area_a = a.Area();
      const uint32_t area_b = b.Area();
      if (area_a == 0 && area_b == 0) return 0.0;
      if (area_a == 0 || area_b == 0) return 1.0;
      const uint32_t inter = Signature::IntersectCount(a, b);
      return 1.0 - inter / std::sqrt(static_cast<double>(area_a) * area_b);
    }
  }
  return 0.0;
}

double MinDistBound(const Signature& query, const Signature& entry,
                    Metric metric, uint32_t fixed_dimensionality) {
  if (fixed_dimensionality == 0) {
    return MinDistBoundAreaStats(query, entry, metric, 0, query.num_bits());
  }
  return MinDistBoundAreaStats(query, entry, metric, fixed_dimensionality,
                               fixed_dimensionality);
}

double MinDistBoundAreaStats(const Signature& query, const Signature& entry,
                             Metric metric, uint32_t min_area,
                             uint32_t max_area) {
  const uint32_t q_area = query.Area();
  const uint32_t c = Signature::IntersectCount(query, entry);
  // Maximum achievable overlap given that |t| <= max_area.
  const uint32_t cc = std::min(c, max_area);

  switch (metric) {
    case Metric::kHamming: {
      // dist = |q| + |t| - 2 |q AND t|, minimized over |t| in [min, max]
      // and |q AND t| <= min(c, |t|); see the header for the derivation.
      int64_t bound;
      if (c < min_area) {
        bound = static_cast<int64_t>(q_area) + min_area - 2 * int64_t{c};
      } else if (c > max_area) {
        bound = static_cast<int64_t>(q_area) - max_area;
      } else {
        bound = static_cast<int64_t>(q_area) - c;  // Generic bound.
      }
      return static_cast<double>(std::max<int64_t>(bound, 0));
    }
    case Metric::kJaccard: {
      if (q_area == 0) return 0.0;  // An empty transaction below could tie.
      // similarity = |q AND t| / |q OR t| with |q OR t| = |q| + |t| -
      // |q AND t| >= |q| + max(min_area, cc) - cc.
      const double denom =
          q_area + (min_area > cc ? min_area - cc : 0u);
      return 1.0 - cc / denom;
    }
    case Metric::kDice: {
      if (q_area == 0) return 0.0;
      // similarity = 2 |q AND t| / (|q| + |t|), |t| >= max(min_area, cc).
      return 1.0 - 2.0 * cc / (q_area + std::max(min_area, cc));
    }
    case Metric::kCosine: {
      if (q_area == 0) return 0.0;
      if (cc == 0) return 1.0;
      // similarity = |q AND t| / sqrt(|q| |t|), |t| >= max(min_area, cc).
      return 1.0 -
             cc / std::sqrt(static_cast<double>(q_area) *
                            std::max(min_area, cc));
    }
  }
  return 0.0;
}

}  // namespace sgtree
