#include "common/distance.h"

namespace sgtree {

std::string MetricName(Metric metric) {
  switch (metric) {
    case Metric::kHamming:
      return "hamming";
    case Metric::kJaccard:
      return "jaccard";
    case Metric::kDice:
      return "dice";
    case Metric::kCosine:
      return "cosine";
  }
  return "unknown";
}

double Distance(const Signature& a, const Signature& b, Metric metric) {
  return DistanceOf(a, b, metric);
}

double MinDistBound(const Signature& query, const Signature& entry,
                    Metric metric, uint32_t fixed_dimensionality) {
  if (fixed_dimensionality == 0) {
    return MinDistBoundAreaStats(query, entry, metric, 0, query.num_bits());
  }
  return MinDistBoundAreaStats(query, entry, metric, fixed_dimensionality,
                               fixed_dimensionality);
}

double MinDistBoundAreaStats(const Signature& query, const Signature& entry,
                             Metric metric, uint32_t min_area,
                             uint32_t max_area) {
  return MinDistBoundAreaStatsOf(query, entry, metric, min_area, max_area);
}

}  // namespace sgtree
