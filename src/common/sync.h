#ifndef SGTREE_COMMON_SYNC_H_
#define SGTREE_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

/// Lock discipline, checked at compile time.
///
/// Every mutex in this codebase is a sgtree::Mutex, and every field or
/// method with a locking contract carries one of the SGTREE_* annotations
/// below. Under clang with -Wthread-safety (the SGTREE_THREAD_SAFETY CMake
/// option, enforced by the thread-safety CI job) the compiler then proves,
/// for EVERY path rather than the schedules a TSAN run happened to execute,
/// that:
///
///  - a field declared SGTREE_GUARDED_BY(mu) is only touched with mu held;
///  - a method declared SGTREE_REQUIRES(mu) is only called with mu held;
///  - a method declared SGTREE_EXCLUDES(mu) never re-enters mu (the
///    self-deadlock check — this is what caught DurableTree::AdoptBulkLoaded
///    calling the public Checkpoint() while already holding mu_);
///  - locks acquired are released on every exit path.
///
/// This is the annotation system of Hutchins, Ballman & Sutherland,
/// "C/C++ Thread Safety Analysis" (SPIN 2014) — the machinery behind
/// abseil's Mutex. The macros expand to clang attributes when the compiler
/// supports them and to nothing otherwise, so gcc builds are unaffected.
///
/// Conventions (see DESIGN.md "Lock discipline"):
///  - raw std::mutex / std::lock_guard / std::condition_variable are banned
///    outside this header (tools/sglint.py enforces it); use Mutex /
///    MutexLock / CondVar;
///  - public entry points that take a lock are annotated
///    SGTREE_EXCLUDES(mu_); private helpers that expect it held are
///    annotated SGTREE_REQUIRES(mu_) and conventionally named *Locked();
///  - lock-free protocols (the executor's epoch rendezvous, metric shard
///    counters, SharedPruneBound) are outside the analysis' model; they
///    stay on std::atomic with explicit memory orders (sglint checks the
///    explicitness) and are covered by the TSAN job instead.

#if defined(__clang__) && !defined(SGTREE_NO_THREAD_SAFETY_ANNOTATIONS)
#define SGTREE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SGTREE_THREAD_ANNOTATION(x)  // gcc/msvc: annotations compile away.
#endif

/// Declares a class to be a capability (a lock) the analysis tracks.
#define SGTREE_CAPABILITY(x) SGTREE_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SGTREE_SCOPED_CAPABILITY SGTREE_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written with the named capability held.
#define SGTREE_GUARDED_BY(x) SGTREE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose POINTEE may only be dereferenced with the capability
/// held (the pointer itself is unguarded — e.g. set once at construction).
#define SGTREE_PT_GUARDED_BY(x) SGTREE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and does not
/// release it). The caller must hold the lock.
#define SGTREE_REQUIRES(...) \
  SGTREE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SGTREE_REQUIRES_SHARED(...) \
  SGTREE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define SGTREE_ACQUIRE(...) \
  SGTREE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define SGTREE_RELEASE(...) \
  SGTREE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts to acquire; the first argument is the return value
/// meaning success (the analysis then tracks the lock only on that branch).
#define SGTREE_TRY_ACQUIRE(...) \
  SGTREE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard for
/// public entry points of a class that takes its own lock).
#define SGTREE_EXCLUDES(...) SGTREE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability is held here without acquiring it —
/// the escape hatch where holding is established by a protocol the
/// analysis cannot see. Use sparingly and leave a comment saying why.
#define SGTREE_ASSERT_CAPABILITY(x) \
  SGTREE_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define SGTREE_RETURN_CAPABILITY(x) SGTREE_THREAD_ANNOTATION(lock_returned(x))

/// Documents a required acquisition order between two capabilities.
#define SGTREE_ACQUIRED_BEFORE(...) \
  SGTREE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SGTREE_ACQUIRED_AFTER(...) \
  SGTREE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Turns the analysis off for one function. Last resort; prefer
/// SGTREE_ASSERT_CAPABILITY, which keeps the rest of the body checked.
#define SGTREE_NO_THREAD_SAFETY_ANALYSIS \
  SGTREE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace sgtree {

class CondVar;

/// Annotated exclusive mutex: std::mutex plus the capability declaration
/// that lets the analysis track it. Prefer MutexLock for scoped holds;
/// Lock/Unlock exist for the hand-over-hand and try-lock shapes RAII cannot
/// express.
class SGTREE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SGTREE_ACQUIRE() { mu_.lock(); }
  void Unlock() SGTREE_RELEASE() { mu_.unlock(); }

  /// Returns true when the lock was acquired.
  bool TryLock() SGTREE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Analysis-only assertion that this thread holds the lock: std::mutex
  /// cannot check ownership at runtime, so this compiles to nothing and
  /// exists to tell the analysis about holds it cannot derive (e.g. a lock
  /// taken by C code, or a single-threaded phase). Const so it can be
  /// stated from const methods of the owning class.
  void AssertHeld() const SGTREE_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock of a Mutex (the std::lock_guard replacement). The scoped-
/// capability annotation makes the analysis release the lock exactly at end
/// of scope, so an early return inside the block is still checked.
class SGTREE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SGTREE_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() SGTREE_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex. Wait() is annotated
/// SGTREE_REQUIRES(mu): from the caller's point of view the lock is held
/// across the call (it is released and re-acquired inside, invisible to the
/// analysis — the standard condition-variable contract). Always wait in a
/// predicate loop:
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(&mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu` and blocks until notified, then re-acquires
  /// `*mu` before returning. Spurious wakeups happen; loop on the predicate.
  void Wait(Mutex* mu) SGTREE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // Ownership stays with the caller's MutexLock.
  }

  /// Wait with a deadline: blocks until notified or `timeout_us`
  /// microseconds pass, whichever is first. Returns false on timeout, true
  /// when (possibly spuriously) notified — either way, re-check the
  /// predicate. This is what the serving batcher and hedge manager use to
  /// sleep "until the flush deadline or new work, whichever comes first".
  bool WaitFor(Mutex* mu, int64_t timeout_us) SGTREE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu->mu_, std::adopt_lock);
    const auto status = cv_.wait_for(native, std::chrono::microseconds(
                                                 timeout_us < 0 ? 0
                                                                : timeout_us));
    native.release();  // Ownership stays with the caller's MutexLock.
    return status == std::cv_status::no_timeout;
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace sgtree

#endif  // SGTREE_COMMON_SYNC_H_
