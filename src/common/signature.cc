#include "common/signature.h"

#include <algorithm>

#include "common/check.h"

namespace sgtree {

Signature Signature::FromItems(std::span<const uint32_t> items,
                               uint32_t num_bits) {
  Signature sig(num_bits);
  for (uint32_t item : items) {
    SGTREE_ASSERT(item < num_bits);
    sig.Set(item);
  }
  return sig;
}

void Signature::Clear() { std::fill(words_.begin(), words_.end(), 0); }

uint32_t Signature::Area() const {
  uint32_t count = 0;
  for (uint64_t w : words_) count += PopCount(w);
  return count;
}

bool Signature::Empty() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

void Signature::UnionWith(const Signature& other) {
  SGTREE_DCHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void Signature::IntersectWith(const Signature& other) {
  SGTREE_DCHECK(num_bits_ == other.num_bits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

bool Signature::Contains(const Signature& other) const {
  SGTREE_DCHECK(num_bits_ == other.num_bits_);
  if (this == &other) return true;
  // Early exit on the first word with a bit of `other` not already present
  // in *this; random signatures diverge within the first word or two, so
  // the common (non-contained) case touches a fraction of the words.
  const uint64_t* mine = words_.data();
  const uint64_t* theirs = other.words_.data();
  const size_t n = words_.size();
  for (size_t i = 0; i < n; ++i) {
    if ((theirs[i] & ~mine[i]) != 0) return false;
  }
  return true;
}

Signature::BoundAndArea Signature::EnlargementAndArea(const Signature& a,
                                                      const Signature& b) {
  SGTREE_DCHECK(a.num_bits_ == b.num_bits_);
  BoundAndArea result;
  for (size_t i = 0; i < a.words_.size(); ++i) {
    result.enlargement += PopCount(b.words_[i] & ~a.words_[i]);
    result.area += PopCount(a.words_[i]);
  }
  return result;
}

uint32_t Signature::IntersectCount(const Signature& a, const Signature& b) {
  SGTREE_DCHECK(a.num_bits_ == b.num_bits_);
  uint32_t count = 0;
  for (size_t i = 0; i < a.words_.size(); ++i) {
    count += PopCount(a.words_[i] & b.words_[i]);
  }
  return count;
}

uint32_t Signature::AndNotCount(const Signature& a, const Signature& b) {
  SGTREE_DCHECK(a.num_bits_ == b.num_bits_);
  uint32_t count = 0;
  for (size_t i = 0; i < a.words_.size(); ++i) {
    count += PopCount(a.words_[i] & ~b.words_[i]);
  }
  return count;
}

uint32_t Signature::XorCount(const Signature& a, const Signature& b) {
  SGTREE_DCHECK(a.num_bits_ == b.num_bits_);
  uint32_t count = 0;
  for (size_t i = 0; i < a.words_.size(); ++i) {
    count += PopCount(a.words_[i] ^ b.words_[i]);
  }
  return count;
}

uint32_t Signature::UnionCount(const Signature& a, const Signature& b) {
  SGTREE_DCHECK(a.num_bits_ == b.num_bits_);
  uint32_t count = 0;
  for (size_t i = 0; i < a.words_.size(); ++i) {
    count += PopCount(a.words_[i] | b.words_[i]);
  }
  return count;
}

uint32_t Signature::Enlargement(const Signature& a, const Signature& b) {
  SGTREE_DCHECK(a.num_bits_ == b.num_bits_);
  uint32_t count = 0;
  for (size_t i = 0; i < a.words_.size(); ++i) {
    count += PopCount(b.words_[i] & ~a.words_[i]);
  }
  return count;
}

std::vector<uint32_t> Signature::ToItems() const {
  std::vector<uint32_t> items;
  items.reserve(Area());
  for (uint32_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      const uint32_t bit = static_cast<uint32_t>(std::countr_zero(w));
      items.push_back(wi * kBitsPerWord + bit);
      w &= w - 1;
    }
  }
  return items;
}

std::string Signature::ToString() const {
  std::string out;
  out.reserve(num_bits_);
  for (uint32_t i = 0; i < num_bits_; ++i) out.push_back(Test(i) ? '1' : '0');
  return out;
}

size_t SignatureHash::operator()(const Signature& s) const {
  // FNV-1a over the backing words.
  uint64_t hash = 14695981039346656037ull;
  for (uint64_t w : s.words()) {
    hash ^= w;
    hash *= 1099511628211ull;
  }
  return static_cast<size_t>(hash);
}

}  // namespace sgtree
