#ifndef SGTREE_COMMON_STATS_H_
#define SGTREE_COMMON_STATS_H_

#include <chrono>
#include <cstdint>

namespace sgtree {

/// Counters accumulated by a single query execution. The paper's evaluation
/// reports pruning efficiency as the percentage of transactions compared
/// with the query, CPU time, and the number of random I/Os; these counters
/// feed all three.
struct QueryStats {
  /// Index nodes (SG-tree) or hash buckets (SG-table) visited.
  uint64_t nodes_accessed = 0;
  /// Simulated random I/Os charged by the buffer pool / bucket reader.
  uint64_t random_ios = 0;
  /// Data transactions whose exact distance to the query was computed.
  uint64_t transactions_compared = 0;
  /// Directory-entry lower bounds evaluated.
  uint64_t bounds_computed = 0;

  QueryStats& operator+=(const QueryStats& other) {
    nodes_accessed += other.nodes_accessed;
    random_ios += other.random_ios;
    transactions_compared += other.transactions_compared;
    bounds_computed += other.bounds_computed;
    return *this;
  }
};

/// Wall-clock stopwatch for the benchmark harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart, in milliseconds.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sgtree

#endif  // SGTREE_COMMON_STATS_H_
