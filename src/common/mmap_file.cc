#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sgtree {

std::unique_ptr<MappedFile> MappedFile::MapReadOnly(const std::string& path,
                                                    std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (error != nullptr) *error = "cannot open " + path;
    return nullptr;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    if (error != nullptr) *error = "cannot stat " + path;
    return nullptr;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      ::close(fd);
      if (error != nullptr) {
        *error = "cannot mmap " + path + ": " + std::strerror(errno);
      }
      return nullptr;
    }
  }
  // The mapping keeps the file's pages alive without the descriptor.
  ::close(fd);
  return std::unique_ptr<MappedFile>(new MappedFile(addr, size));
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

}  // namespace sgtree
