#ifndef SGTREE_COMMON_MMAP_FILE_H_
#define SGTREE_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace sgtree {

/// RAII wrapper around a read-only, private, whole-file memory mapping.
/// This is the ONLY place in the tree (besides its .cc) allowed to issue
/// raw mmap/munmap syscalls — everything else goes through Env::MapReadOnly
/// (durability/env.h), which dispatches here for the POSIX environment and
/// to a read-into-buffer fallback for wrapped/fault-injecting environments.
///
/// The mapping is page-aligned (so 8-byte-aligned word access into it is
/// well defined) and outlives the file descriptor, which is closed before
/// MapReadOnly returns. A zero-length file maps to {nullptr, 0} and is a
/// valid (empty) mapping.
class MappedFile {
 public:
  /// Maps all of `path` read-only. Returns nullptr with `*error` set (when
  /// non-null) on failure.
  static std::unique_ptr<MappedFile> MapReadOnly(const std::string& path,
                                                 std::string* error);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const {
    return static_cast<const uint8_t*>(addr_);
  }
  size_t size() const { return size_; }

 private:
  MappedFile(void* addr, size_t size) : addr_(addr), size_(size) {}

  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace sgtree

#endif  // SGTREE_COMMON_MMAP_FILE_H_
