#ifndef SGTREE_COMMON_RNG_H_
#define SGTREE_COMMON_RNG_H_

#include <cstdint>

namespace sgtree {

/// Deterministic pseudo-random generator (xoshiro256**) used by the data
/// generators and the tests. A fixed algorithm (rather than std::mt19937
/// plus std::*_distribution) keeps generated datasets bit-identical across
/// standard libraries, which the experiment harness relies on.
class Rng {
 public:
  /// Seeds the four lanes from `seed` via SplitMix64. Any seed (including 0)
  /// yields a valid non-degenerate state.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit word.
  uint64_t NextU64();

  /// Uniform integer in [0, bound). `bound` must be nonzero. Uses Lemire's
  /// multiply-shift rejection for an unbiased result.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Poisson-distributed integer with the given mean (Knuth's method for
  /// small means, normal approximation above 64).
  uint32_t Poisson(double mean);

  /// Exponentially distributed value with the given mean.
  double Exponential(double mean);

  /// Normally distributed value (Box-Muller).
  double Normal(double mean, double stddev);

  /// True with probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// A new independent generator derived from this one's stream. Useful for
  /// giving each batch / query workload its own stream.
  Rng Split();

 private:
  uint64_t state_[4];
};

}  // namespace sgtree

#endif  // SGTREE_COMMON_RNG_H_
