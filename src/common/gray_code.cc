#include "common/gray_code.h"

#include <cstdint>

#include "common/bit_ops.h"

namespace sgtree {
namespace {

// XOR-suffix scan within one word: bit i of the result is the XOR of bits
// i..63 of `w` (parallel prefix scan from the most significant bit down).
uint64_t SuffixXorScan(uint64_t w) {
  w ^= w >> 1;
  w ^= w >> 2;
  w ^= w >> 4;
  w ^= w >> 8;
  w ^= w >> 16;
  w ^= w >> 32;
  return w;
}

// Rank word for signature word `g` given `parity` = XOR of all bits more
// significant than this word. Bit i of the Gray rank is the XOR of codeword
// bits i and above.
uint64_t RankWord(uint64_t g, bool parity) {
  const uint64_t scan = SuffixXorScan(g);
  return parity ? ~scan : scan;
}

}  // namespace

std::vector<uint64_t> GrayRank(const Signature& sig) {
  const auto words = sig.words();
  std::vector<uint64_t> rank(words.size(), 0);
  bool parity = false;
  for (size_t i = words.size(); i-- > 0;) {
    rank[i] = RankWord(words[i], parity);
    parity ^= (PopCount(words[i]) & 1) != 0;
  }
  return rank;
}

bool GrayLess(const Signature& a, const Signature& b) {
  const auto wa = a.words();
  const auto wb = b.words();
  // Widths are expected to match; compare as big integers MSW first.
  bool pa = false;
  bool pb = false;
  for (size_t i = wa.size(); i-- > 0;) {
    const uint64_t ra = RankWord(wa[i], pa);
    const uint64_t rb = RankWord(wb[i], pb);
    if (ra != rb) return ra < rb;
    pa ^= (PopCount(wa[i]) & 1) != 0;
    pb ^= (PopCount(wb[i]) & 1) != 0;
  }
  return false;
}

}  // namespace sgtree
