#include "storage/sharded_buffer_pool.h"

#include <algorithm>

namespace sgtree {

ShardedBufferPool::ShardedBufferPool(uint32_t total_capacity,
                                     uint32_t num_shards)
    : capacity_(total_capacity) {
  num_shards = std::max<uint32_t>(num_shards, 1);
  shards_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    // Distribute the frame budget as evenly as possible; the first
    // total % num_shards shards take the remainder frames.
    const uint32_t share = total_capacity / num_shards +
                           (s < total_capacity % num_shards ? 1 : 0);
    shards_.push_back(std::make_unique<Shard>(share));
  }
}

uint32_t ShardedBufferPool::ShardOf(PageId id) const {
  // Fibonacci multiplicative hash: neighboring page ids (trees allocate them
  // sequentially) spread across shards instead of striping predictably.
  const uint64_t h = static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ull;
  return static_cast<uint32_t>(h >> 32) % num_shards();
}

bool ShardedBufferPool::Touch(PageId id) {
  Shard& shard = *shards_[ShardOf(id)];
  MutexLock lock(&shard.mu);
  return shard.pool.Touch(id);
}

void ShardedBufferPool::TouchWrite(PageId id) {
  Shard& shard = *shards_[ShardOf(id)];
  MutexLock lock(&shard.mu);
  shard.pool.TouchWrite(id);
}

void ShardedBufferPool::Evict(PageId id) {
  Shard& shard = *shards_[ShardOf(id)];
  MutexLock lock(&shard.mu);
  shard.pool.Evict(id);
}

void ShardedBufferPool::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->pool.Clear();
  }
}

IoStats ShardedBufferPool::StatsSnapshot() const {
  IoStats total;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    const IoStats& s = shard->pool.stats();
    total.page_accesses += s.page_accesses;
    total.buffer_hits += s.buffer_hits;
    total.random_ios += s.random_ios;
    total.page_writes += s.page_writes;
  }
  return total;
}

void ShardedBufferPool::BindMetrics(obs::MetricsRegistry* registry,
                                    const std::string& prefix) {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->pool.BindMetrics(registry, prefix);
  }
}

void ShardedBufferPool::ResetStats() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->pool.mutable_stats()->Reset();
  }
}

uint32_t ShardedBufferPool::ResidentPages() const {
  uint32_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->pool.ResidentPages();
  }
  return total;
}

}  // namespace sgtree
