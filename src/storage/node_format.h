#ifndef SGTREE_STORAGE_NODE_FORMAT_H_
#define SGTREE_STORAGE_NODE_FORMAT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/signature.h"

namespace sgtree {

/// Storage-neutral image of one SG-tree node, used by the page codec and by
/// persistence. `ref` is a child PageId for directory entries and a
/// transaction id for leaf entries.
struct NodeRecord {
  uint16_t level = 0;  // 0 = leaf.
  std::vector<std::pair<uint64_t, Signature>> entries;
};

/// On-page node layout:
///   uint16 level | uint16 num_entries | entries...
/// Each entry: uint64 ref (little endian) followed by the signature encoding
/// (dense always when `compress` is false; adaptive sparse/dense otherwise,
/// Section 3.2).
void EncodeNode(const NodeRecord& record, bool compress,
                std::vector<uint8_t>* out);

/// Decodes a node image produced by EncodeNode. Returns false on malformed
/// input. `num_bits` is the tree-wide signature width (stored once in the
/// tree header, not per node). When `consumed` is non-null it receives the
/// number of bytes the decoder read, so callers (the invariant auditor, the
/// fuzz harnesses) can reject images with trailing garbage.
bool DecodeNode(const std::vector<uint8_t>& data, uint32_t num_bits,
                NodeRecord* record, size_t* consumed = nullptr);

/// Exact size EncodeNode would produce.
size_t EncodedNodeSize(const NodeRecord& record, bool compress);

/// Bytes one entry occupies on a page without compression. Used to derive
/// the node capacity from the page size.
size_t UncompressedEntrySize(uint32_t num_bits);

}  // namespace sgtree

#endif  // SGTREE_STORAGE_NODE_FORMAT_H_
