#include "storage/page_store.h"

#include <algorithm>
#include <utility>

namespace sgtree {

PageId MemPageStore::Allocate() {
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    pages_[id].live = true;
    pages_[id].payload.clear();
    return id;
  }
  pages_.push_back(Slot{{}, true});
  return static_cast<PageId>(pages_.size() - 1);
}

bool MemPageStore::Reserve(PageId id) {
  if (id < pages_.size()) {
    if (pages_[id].live) return false;
    free_list_.erase(std::remove(free_list_.begin(), free_list_.end(), id),
                     free_list_.end());
  } else {
    // Grow to cover `id`; the skipped slots join the free list.
    for (PageId hole = static_cast<PageId>(pages_.size()); hole < id;
         ++hole) {
      free_list_.push_back(hole);
    }
    pages_.resize(static_cast<size_t>(id) + 1);
  }
  pages_[id].live = true;
  pages_[id].payload.clear();
  return true;
}

void MemPageStore::Free(PageId id) {
  if (id >= pages_.size() || !pages_[id].live) return;
  pages_[id].live = false;
  pages_[id].payload.clear();
  pages_[id].payload.shrink_to_fit();
  free_list_.push_back(id);
}

bool MemPageStore::Write(PageId id, std::vector<uint8_t> payload) {
  if (id >= pages_.size() || !pages_[id].live) return false;
  if (payload.size() > page_size_) return false;
  pages_[id].payload = std::move(payload);
  return true;
}

bool MemPageStore::Read(PageId id, std::vector<uint8_t>* payload) const {
  if (id >= pages_.size() || !pages_[id].live) return false;
  *payload = pages_[id].payload;
  return true;
}

uint32_t MemPageStore::LivePages() const {
  uint32_t live = 0;
  for (const Slot& slot : pages_) {
    if (slot.live) ++live;
  }
  return live;
}

}  // namespace sgtree
