#ifndef SGTREE_STORAGE_PAGE_STORE_H_
#define SGTREE_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <vector>

#include "storage/page.h"

namespace sgtree {

/// Abstract store of variable-payload pages with a free list. Payloads are
/// capped at the page size; callers that need the raw bytes of a node image
/// go through a page store (persistence and the paged reader do), while the
/// hot path keeps decoded nodes in memory and charges I/O through the
/// BufferPool.
///
/// Implementations:
///   * MemPageStore (below)            — the simulated in-memory disk;
///   * FilePageStore (durability/)     — real file-backed slotted pages with
///     checksums, the checkpoint target of the durable tree;
///   * FaultInjectingPageStore (durability/) — wrapper injecting
///     deterministic write/read faults for crash testing.
class PageStoreInterface {
 public:
  virtual ~PageStoreInterface() = default;

  virtual uint32_t page_size() const = 0;

  /// Allocates a page (reusing freed ids first) and returns its id.
  virtual PageId Allocate() = 0;

  /// Marks a specific id live, allocating backing space as needed (ids
  /// skipped over become free pages). Returns false if already live or the
  /// id cannot be materialized. Recovery uses this to rebuild a store whose
  /// page ids must match the ones recorded in the log.
  virtual bool Reserve(PageId id) = 0;

  /// Returns a page to the free list. The id may be reused by Allocate.
  virtual void Free(PageId id) = 0;

  /// Stores `payload` into page `id`. The payload must fit in one page.
  /// Returns false if it does not, or if the id is invalid/freed, or on
  /// I/O failure.
  virtual bool Write(PageId id, std::vector<uint8_t> payload) = 0;

  /// Reads the payload of page `id`. Returns false for invalid/freed ids
  /// and (file-backed stores) for pages whose checksum does not match.
  virtual bool Read(PageId id, std::vector<uint8_t>* payload) const = 0;

  /// Number of live (allocated, not freed) pages.
  virtual uint32_t LivePages() const = 0;

  /// Total allocated page slots including freed ones.
  virtual uint32_t TotalPages() const = 0;
};

/// The simulated in-memory disk: a growable array of page slots. This is
/// the default store under an SgTree (pure id allocator — node payloads
/// stay decoded in memory) and the backing of PagedTreeImage.
class MemPageStore final : public PageStoreInterface {
 public:
  explicit MemPageStore(uint32_t page_size = kDefaultPageSize)
      : page_size_(page_size) {}

  MemPageStore(const MemPageStore&) = delete;
  MemPageStore& operator=(const MemPageStore&) = delete;

  uint32_t page_size() const override { return page_size_; }
  PageId Allocate() override;
  bool Reserve(PageId id) override;
  void Free(PageId id) override;
  bool Write(PageId id, std::vector<uint8_t> payload) override;
  bool Read(PageId id, std::vector<uint8_t>* payload) const override;
  uint32_t LivePages() const override;
  uint32_t TotalPages() const override {
    return static_cast<uint32_t>(pages_.size());
  }

 private:
  struct Slot {
    std::vector<uint8_t> payload;
    bool live = false;
  };

  uint32_t page_size_;
  std::vector<Slot> pages_;
  std::vector<PageId> free_list_;
};

}  // namespace sgtree

#endif  // SGTREE_STORAGE_PAGE_STORE_H_
