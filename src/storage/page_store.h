#ifndef SGTREE_STORAGE_PAGE_STORE_H_
#define SGTREE_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <vector>

#include "storage/page.h"

namespace sgtree {

/// A simulated disk: a growable array of variable-payload pages with a free
/// list. Payloads are capped at the page size; callers that need the raw
/// bytes of a node image go through this store (persistence does), while the
/// hot path keeps decoded nodes in memory and charges I/O through the
/// BufferPool.
class PageStore {
 public:
  explicit PageStore(uint32_t page_size = kDefaultPageSize)
      : page_size_(page_size) {}

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  uint32_t page_size() const { return page_size_; }

  /// Allocates a page (reusing freed ids first) and returns its id.
  PageId Allocate();

  /// Returns a page to the free list. The id may be reused by Allocate.
  void Free(PageId id);

  /// Stores `payload` into page `id`. The payload must fit in one page.
  /// Returns false if it does not, or if the id is invalid/freed.
  bool Write(PageId id, std::vector<uint8_t> payload);

  /// Reads the payload of page `id`. Returns false for invalid/freed ids.
  bool Read(PageId id, std::vector<uint8_t>* payload) const;

  /// Number of live (allocated, not freed) pages.
  uint32_t LivePages() const;

  /// Total allocated page slots including freed ones.
  uint32_t TotalPages() const {
    return static_cast<uint32_t>(pages_.size());
  }

 private:
  struct Slot {
    std::vector<uint8_t> payload;
    bool live = false;
  };

  uint32_t page_size_;
  std::vector<Slot> pages_;
  std::vector<PageId> free_list_;
};

}  // namespace sgtree

#endif  // SGTREE_STORAGE_PAGE_STORE_H_
