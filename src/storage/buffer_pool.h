#ifndef SGTREE_STORAGE_BUFFER_POOL_H_
#define SGTREE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_cache.h"

namespace sgtree {

namespace obs {
class Counter;
class MetricsRegistry;
}  // namespace obs

/// LRU buffer-pool simulator with exact random-I/O accounting.
///
/// The SG-tree keeps decoded nodes in memory (laptop-scale reproduction) but
/// routes every node access through this pool: an access to a page that is
/// not among the `capacity` most-recently-used pages is charged as one
/// random I/O, exactly what the same access pattern would cost a paginated
/// on-disk tree with an LRU buffer of that many frames. Capacity 0 disables
/// buffering (every access is an I/O), which matches the paper's cold-cache
/// query measurements.
///
/// The recency list is an intrusive doubly-linked list threaded through a
/// flat frame array: all frames live in one contiguous allocation sized at
/// construction, and moving a page to the front is three index swaps with no
/// allocation or pointer chasing — roughly twice as fast as the previous
/// std::list implementation, and the layout one would use for a real frame
/// table. Not thread-safe by design — it is either thread-private (one per
/// executor lane) or a stripe of ShardedBufferPool, where it is declared
/// SGTREE_GUARDED_BY the stripe latch and the compiler proves no unlocked
/// path reaches it. Do not add internal locking here; the stripe latch is
/// the synchronization point.
class BufferPool : public PageCache {
 public:
  explicit BufferPool(uint32_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  uint32_t capacity() const { return capacity_; }

  /// Records an access to `id`. Returns true on a buffer hit.
  bool Touch(PageId id) override;

  /// Records a write of `id` (also makes the page resident).
  void TouchWrite(PageId id) override;

  /// Drops `id` from the buffer (page freed).
  void Evict(PageId id) override;

  /// Empties the buffer (but keeps cumulative stats).
  void Clear() override;

  /// Changes the number of frames; shrinking evicts LRU pages.
  void Resize(uint32_t capacity);

  const IoStats& stats() const { return stats_; }
  IoStats* mutable_stats() { return &stats_; }

  /// Mirrors this pool's counters into `registry` under
  /// `<prefix>.accesses|hits|misses|writes` — the registry absorbs (and
  /// extends, with process-wide aggregation across pools) the embedded
  /// IoStats. Pass nullptr to unbind. The registry must outlive the pool;
  /// the shared counters are sharded atomics, so several pools (e.g. the
  /// shards of a ShardedBufferPool) may bind the same prefix concurrently.
  void BindMetrics(obs::MetricsRegistry* registry, const std::string& prefix);

  uint32_t ResidentPages() const {
    return static_cast<uint32_t>(index_.size());
  }

 private:
  static constexpr uint32_t kNil = UINT32_MAX;

  struct Frame {
    PageId page = kInvalidPageId;
    uint32_t prev = kNil;
    uint32_t next = kNil;
  };

  /// Makes `id` resident in a free or recycled frame at the list head.
  void Insert(PageId id);
  /// Unlinks frame `f` from the recency list.
  void Unlink(uint32_t f);
  /// Links frame `f` at the head (MRU end) of the recency list.
  void LinkFront(uint32_t f);
  /// Evicts the tail (LRU) frame and returns its index for reuse.
  uint32_t EvictTail();

  uint32_t capacity_;
  IoStats stats_;
  // Optional registry mirrors (all four set, or all four null).
  obs::Counter* ctr_accesses_ = nullptr;
  obs::Counter* ctr_hits_ = nullptr;
  obs::Counter* ctr_misses_ = nullptr;
  obs::Counter* ctr_writes_ = nullptr;
  std::vector<Frame> frames_;  // Flat frame table, size == capacity_.
  uint32_t head_ = kNil;       // MRU frame index.
  uint32_t tail_ = kNil;       // LRU frame index.
  uint32_t free_head_ = kNil;  // Free frames chained through Frame::next.
  std::unordered_map<PageId, uint32_t> index_;  // page -> frame index.
};

}  // namespace sgtree

#endif  // SGTREE_STORAGE_BUFFER_POOL_H_
