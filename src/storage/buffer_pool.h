#ifndef SGTREE_STORAGE_BUFFER_POOL_H_
#define SGTREE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/io_stats.h"
#include "storage/page.h"

namespace sgtree {

/// LRU buffer-pool simulator with exact random-I/O accounting.
///
/// The SG-tree keeps decoded nodes in memory (laptop-scale reproduction) but
/// routes every node access through this pool: an access to a page that is
/// not among the `capacity` most-recently-used pages is charged as one
/// random I/O, exactly what the same access pattern would cost a paginated
/// on-disk tree with an LRU buffer of that many frames. Capacity 0 disables
/// buffering (every access is an I/O), which matches the paper's cold-cache
/// query measurements.
class BufferPool {
 public:
  explicit BufferPool(uint32_t capacity) : capacity_(capacity) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  uint32_t capacity() const { return capacity_; }

  /// Records an access to `id`. Returns true on a buffer hit.
  bool Touch(PageId id);

  /// Records a write of `id` (also makes the page resident).
  void TouchWrite(PageId id);

  /// Drops `id` from the buffer (page freed).
  void Evict(PageId id);

  /// Empties the buffer (but keeps cumulative stats).
  void Clear();

  /// Changes the number of frames; shrinking evicts LRU pages.
  void Resize(uint32_t capacity);

  const IoStats& stats() const { return stats_; }
  IoStats* mutable_stats() { return &stats_; }

  uint32_t ResidentPages() const {
    return static_cast<uint32_t>(lru_.size());
  }

 private:
  void Insert(PageId id);

  uint32_t capacity_;
  IoStats stats_;
  std::list<PageId> lru_;  // Front = most recently used.
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
};

}  // namespace sgtree

#endif  // SGTREE_STORAGE_BUFFER_POOL_H_
