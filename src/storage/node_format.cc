#include "storage/node_format.h"

#include "storage/codec.h"

namespace sgtree {
namespace {

void AppendU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v & 0xff));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void AppendU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int b = 0; b < 8; ++b) {
    out->push_back(static_cast<uint8_t>(v >> (8 * b)));
  }
}

bool ReadU16(const std::vector<uint8_t>& data, size_t* offset, uint16_t* v) {
  if (*offset + 2 > data.size()) return false;
  *v = static_cast<uint16_t>(data[*offset] | (data[*offset + 1] << 8));
  *offset += 2;
  return true;
}

bool ReadU64(const std::vector<uint8_t>& data, size_t* offset, uint64_t* v) {
  if (*offset + 8 > data.size()) return false;
  uint64_t value = 0;
  for (int b = 0; b < 8; ++b) {
    value |= static_cast<uint64_t>(data[*offset + b]) << (8 * b);
  }
  *offset += 8;
  *v = value;
  return true;
}

// Dense-only encoding used when compression is disabled.
void EncodeDense(const Signature& sig, std::vector<uint8_t>* out) {
  out->push_back(kDenseTag);
  const size_t dense = (sig.num_bits() + 7) / 8;
  size_t remaining = dense;
  for (uint64_t w : sig.words()) {
    const size_t n = remaining < 8 ? remaining : 8;
    for (size_t b = 0; b < n; ++b) {
      out->push_back(static_cast<uint8_t>(w >> (8 * b)));
    }
    remaining -= n;
  }
}

}  // namespace

size_t UncompressedEntrySize(uint32_t num_bits) {
  return 8 + DenseEncodedSize(num_bits);
}

void EncodeNode(const NodeRecord& record, bool compress,
                std::vector<uint8_t>* out) {
  AppendU16(record.level, out);
  AppendU16(static_cast<uint16_t>(record.entries.size()), out);
  for (const auto& [ref, sig] : record.entries) {
    AppendU64(ref, out);
    if (compress) {
      EncodeSignature(sig, out);
    } else {
      EncodeDense(sig, out);
    }
  }
}

bool DecodeNode(const std::vector<uint8_t>& data, uint32_t num_bits,
                NodeRecord* record, size_t* consumed) {
  size_t offset = 0;
  uint16_t level = 0;
  uint16_t count = 0;
  if (!ReadU16(data, &offset, &level)) return false;
  if (!ReadU16(data, &offset, &count)) return false;
  record->level = level;
  record->entries.clear();
  // Every entry needs at least a ref and a signature tag byte, so a valid
  // count is bounded by the remaining bytes — don't let a corrupt header
  // drive a huge allocation.
  if (static_cast<size_t>(count) * 9 > data.size() - offset) return false;
  record->entries.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    uint64_t ref = 0;
    if (!ReadU64(data, &offset, &ref)) return false;
    Signature sig;
    if (!DecodeSignature(data, &offset, num_bits, &sig)) return false;
    record->entries.emplace_back(ref, std::move(sig));
  }
  if (consumed != nullptr) *consumed = offset;
  return true;
}

size_t EncodedNodeSize(const NodeRecord& record, bool compress) {
  size_t size = 4;
  for (const auto& [ref, sig] : record.entries) {
    (void)ref;
    size += 8;
    size += compress ? EncodedSize(sig) : DenseEncodedSize(sig.num_bits());
  }
  return size;
}

}  // namespace sgtree
