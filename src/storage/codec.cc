#include "storage/codec.h"

#include <cstring>

namespace sgtree {
namespace {

size_t DenseBytes(uint32_t num_bits) { return (num_bits + 7) / 8; }

size_t SparseBytes(uint32_t area) { return 2 + 2 * static_cast<size_t>(area); }

void AppendU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v & 0xff));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

bool ReadU16(const std::vector<uint8_t>& data, size_t* offset, uint16_t* v) {
  if (*offset + 2 > data.size()) return false;
  *v = static_cast<uint16_t>(data[*offset] | (data[*offset + 1] << 8));
  *offset += 2;
  return true;
}

}  // namespace

size_t DenseEncodedSize(uint32_t num_bits) { return 1 + DenseBytes(num_bits); }

size_t EncodedSize(const Signature& sig) {
  const size_t dense = DenseBytes(sig.num_bits());
  if (sig.num_bits() > 65536) return 1 + dense;
  const size_t sparse = SparseBytes(sig.Area());
  return 1 + (sparse < dense ? sparse : dense);
}

void EncodeSignature(const Signature& sig, std::vector<uint8_t>* out) {
  const size_t dense = DenseBytes(sig.num_bits());
  const uint32_t area = sig.Area();
  const bool use_sparse =
      sig.num_bits() <= 65536 && SparseBytes(area) < dense;
  if (use_sparse) {
    out->push_back(kSparseTag);
    AppendU16(static_cast<uint16_t>(area), out);
    for (uint32_t pos : sig.ToItems()) {
      AppendU16(static_cast<uint16_t>(pos), out);
    }
    return;
  }
  out->push_back(kDenseTag);
  const auto words = sig.words();
  size_t remaining = dense;
  for (uint64_t w : words) {
    const size_t n = remaining < 8 ? remaining : 8;
    for (size_t b = 0; b < n; ++b) {
      out->push_back(static_cast<uint8_t>(w >> (8 * b)));
    }
    remaining -= n;
  }
}

bool DecodeSignature(const std::vector<uint8_t>& data, size_t* offset,
                     uint32_t num_bits, Signature* sig) {
  if (*offset >= data.size()) return false;
  const uint8_t tag = data[(*offset)++];
  *sig = Signature(num_bits);
  if (tag == kSparseTag) {
    uint16_t count = 0;
    if (!ReadU16(data, offset, &count)) return false;
    for (uint16_t i = 0; i < count; ++i) {
      uint16_t pos = 0;
      if (!ReadU16(data, offset, &pos)) return false;
      if (pos >= num_bits) return false;
      sig->Set(pos);
    }
    return true;
  }
  if (tag != kDenseTag) return false;
  const size_t dense = DenseBytes(num_bits);
  if (*offset + dense > data.size()) return false;
  auto words = sig->mutable_words();
  size_t byte_index = 0;
  for (auto& w : words) {
    uint64_t value = 0;
    for (size_t b = 0; b < 8 && byte_index < dense; ++b, ++byte_index) {
      value |= static_cast<uint64_t>(data[*offset + byte_index]) << (8 * b);
    }
    w = value;
  }
  // Reject encodings that set bits beyond num_bits.
  if (!words.empty() && (words.back() & ~TailMask(num_bits)) != 0) {
    return false;
  }
  *offset += dense;
  return true;
}

}  // namespace sgtree
