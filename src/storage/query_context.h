#ifndef SGTREE_STORAGE_QUERY_CONTEXT_H_
#define SGTREE_STORAGE_QUERY_CONTEXT_H_

#include <cstdint>

#include "common/stats.h"
#include "obs/query_trace.h"
#include "storage/page.h"
#include "storage/page_cache.h"

namespace sgtree {

/// Per-query execution context: where node accesses are buffered and where
/// per-query counters accumulate. Search functions take one of these instead
/// of mutating state owned by a const tree, which is what makes a const
/// SgTree genuinely thread-safe to read — concurrent queries each bring
/// their own context (private pool, private stats) or share a thread-safe
/// PageCache (ShardedBufferPool).
///
/// All three pointers may be null: a null `pool` skips buffering entirely
/// (no I/O is charged anywhere), a null `stats` skips the paper's coarse
/// counters, a null `trace` skips the per-query pruning breakdown. The
/// Count*/Trace* helpers below are the single place the search code reports
/// through, so the legacy QueryStats counters and the QueryTrace stay in
/// lockstep by construction — and a fully-null context makes every one of
/// them a no-op, which is the "metrics off" mode the differential tests
/// compare against.
struct QueryContext {
  PageCache* pool = nullptr;
  QueryStats* stats = nullptr;
  QueryTrace* trace = nullptr;

  /// Charges one page read: touches the pool and, on a buffer miss, adds a
  /// random I/O to the per-query stats. The trace records the hit/miss
  /// split, so trace->buffer_misses equals this query's random I/Os.
  void ChargeRead(PageId id) const {
    if (pool != nullptr) {
      const bool hit = pool->Touch(id);
      if (hit) {
        if (trace != nullptr) ++trace->buffer_hits;
      } else {
        if (stats != nullptr) ++stats->random_ios;
        if (trace != nullptr) ++trace->buffer_misses;
      }
    }
  }

  /// Charges `pages` random I/Os without a pool — the simulated multi-page
  /// bucket/posting-list reads of the table and inverted backends. Every
  /// page counts as a miss (those backends model no buffer).
  void ChargeSimulatedIo(uint64_t pages) const {
    if (stats != nullptr) stats->random_ios += pages;
    if (trace != nullptr) trace->buffer_misses += pages;
  }

  /// One node (or bucket / posting list) was read and examined.
  void CountNode(bool leaf) const {
    if (stats != nullptr) ++stats->nodes_accessed;
    if (trace != nullptr) {
      ++(leaf ? trace->leaf_nodes_visited : trace->dir_nodes_visited);
    }
  }

  /// `n` entry signatures had a descend-or-prune bound/predicate computed.
  void CountBounds(uint64_t n) const {
    if (stats != nullptr) stats->bounds_computed += n;
    if (trace != nullptr) trace->signatures_tested += n;
  }

  /// `n` leaf candidates had their exact distance/predicate evaluated.
  void CountVerified(uint64_t n) const {
    if (stats != nullptr) stats->transactions_compared += n;
    if (trace != nullptr) trace->candidates_verified += n;
  }

  // Trace-only outcomes (no QueryStats analogue).
  void TraceSignatures(uint64_t n) const {
    if (trace != nullptr) trace->signatures_tested += n;
  }
  void TraceDescended(uint64_t n) const {
    if (trace != nullptr) trace->subtrees_descended += n;
  }
  void TracePruned(uint64_t n) const {
    if (trace != nullptr) trace->subtrees_pruned += n;
  }
  void TraceFalseDrops(uint64_t n) const {
    if (trace != nullptr) trace->false_drops += n;
  }
  void TraceResults(uint64_t n) const {
    if (trace != nullptr) trace->results += n;
  }
};

}  // namespace sgtree

#endif  // SGTREE_STORAGE_QUERY_CONTEXT_H_
