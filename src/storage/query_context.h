#ifndef SGTREE_STORAGE_QUERY_CONTEXT_H_
#define SGTREE_STORAGE_QUERY_CONTEXT_H_

#include "common/stats.h"
#include "storage/page.h"
#include "storage/page_cache.h"

namespace sgtree {

/// Per-query execution context: where node accesses are buffered and where
/// per-query counters accumulate. Search functions take one of these instead
/// of mutating state owned by a const tree, which is what makes a const
/// SgTree genuinely thread-safe to read — concurrent queries each bring
/// their own context (private pool, private stats) or share a thread-safe
/// PageCache (ShardedBufferPool).
///
/// Both pointers may be null: a null `pool` skips buffering entirely (no
/// I/O is charged anywhere), a null `stats` skips per-query counting.
struct QueryContext {
  PageCache* pool = nullptr;
  QueryStats* stats = nullptr;

  /// Charges one page read: touches the pool and, on a buffer miss, adds a
  /// random I/O to the per-query stats.
  void ChargeRead(PageId id) const {
    if (pool != nullptr) {
      const bool hit = pool->Touch(id);
      if (!hit && stats != nullptr) ++stats->random_ios;
    }
  }
};

}  // namespace sgtree

#endif  // SGTREE_STORAGE_QUERY_CONTEXT_H_
