#ifndef SGTREE_STORAGE_IO_STATS_H_
#define SGTREE_STORAGE_IO_STATS_H_

#include <cstdint>
#include <limits>

namespace sgtree {

/// Counters maintained by the buffer pool. A "random I/O" is a page access
/// that missed the buffer; the paper's Figures 6, 8 and 10 report exactly
/// this quantity.
struct IoStats {
  uint64_t page_accesses = 0;
  uint64_t buffer_hits = 0;
  uint64_t random_ios = 0;
  uint64_t page_writes = 0;

  void Reset() { *this = IoStats{}; }

  /// NaN when no page was ever accessed: an untouched pool has no hit rate,
  /// and reporting 0% would read as "everything missed". Exporters render
  /// the NaN as "n/a" (obs::FormatHitRatio / obs::ToJson).
  double HitRatio() const {
    return page_accesses == 0
               ? std::numeric_limits<double>::quiet_NaN()
               : static_cast<double>(buffer_hits) /
                     static_cast<double>(page_accesses);
  }
};

}  // namespace sgtree

#endif  // SGTREE_STORAGE_IO_STATS_H_
