#ifndef SGTREE_STORAGE_CODEC_H_
#define SGTREE_STORAGE_CODEC_H_

#include <cstdint>
#include <vector>

#include "common/signature.h"

namespace sgtree {

/// Signature compression (Section 3.2 of the paper).
///
/// Sparse signatures waste space as raw bitmaps: a 256-bit signature with
/// ten 1s occupies 32 bytes dense but only 10 position bytes sparse. The
/// on-page encoding is:
///
///   byte 0            tag: kDenseTag, or kSparseTag
///   dense:            ceil(num_bits / 8) raw bitmap bytes, LSB-first
///   sparse:           uint16 count, then `count` uint16 bit positions
///                     (ascending). Positions are 16-bit because dictionary
///                     sizes in this domain are at most tens of thousands.
///
/// EncodeSignature picks whichever representation is smaller, so the encoded
/// size never exceeds dense size + 1.

inline constexpr uint8_t kDenseTag = 0;
inline constexpr uint8_t kSparseTag = 1;

/// Appends the encoding of `sig` to `out`. Signatures wider than 65536 bits
/// are always encoded dense (positions would not fit in uint16).
void EncodeSignature(const Signature& sig, std::vector<uint8_t>* out);

/// Decodes one signature of width `num_bits` from `data + *offset`,
/// advancing `*offset`. Returns false on a malformed or truncated encoding.
bool DecodeSignature(const std::vector<uint8_t>& data, size_t* offset,
                     uint32_t num_bits, Signature* sig);

/// Size in bytes EncodeSignature would produce, without encoding.
size_t EncodedSize(const Signature& sig);

/// Size of the dense encoding for a signature of `num_bits` bits (tag
/// included).
size_t DenseEncodedSize(uint32_t num_bits);

}  // namespace sgtree

#endif  // SGTREE_STORAGE_CODEC_H_
