#ifndef SGTREE_STORAGE_SHARDED_BUFFER_POOL_H_
#define SGTREE_STORAGE_SHARDED_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_cache.h"

namespace sgtree {

/// Thread-safe buffer pool: pages are partitioned across N lock-striped
/// shards, each an independent BufferPool guarding 1/N of the total frame
/// budget. Concurrent queries touching different shards proceed without
/// contention; queries colliding on a shard serialize only for the few
/// nanoseconds of one LRU update.
///
/// The per-shard LRU is an approximation of one global LRU (a page can be
/// evicted from a full shard while another shard has idle frames), which is
/// exactly the trade real buffer managers make when they stripe their latch.
/// Per-shard IoStats are merged on demand by StatsSnapshot().
///
/// Lock protocol: each stripe's BufferPool is SGTREE_GUARDED_BY its own
/// Shard::mu, and NO method ever holds two stripe locks at once — per-page
/// operations touch exactly the owning stripe, and the whole-pool sweeps
/// (Clear, StatsSnapshot, ...) lock the stripes strictly one at a time.
/// With at most one stripe lock per thread there is no acquisition order to
/// get wrong, so the striping is deadlock-free by construction; the
/// guarded-by annotations make the compiler prove no path reaches a stripe
/// pool without its latch.
class ShardedBufferPool : public PageCache {
 public:
  /// `total_capacity` frames split as evenly as possible across
  /// `num_shards` shards (every shard gets at least one frame when the
  /// total allows; num_shards is clamped to >= 1).
  ShardedBufferPool(uint32_t total_capacity, uint32_t num_shards);

  ShardedBufferPool(const ShardedBufferPool&) = delete;
  ShardedBufferPool& operator=(const ShardedBufferPool&) = delete;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  uint32_t capacity() const { return capacity_; }

  bool Touch(PageId id) override;
  void TouchWrite(PageId id) override;
  void Evict(PageId id) override;
  void Clear() override;

  /// Sum of the per-shard counters at this instant. Taken shard by shard
  /// under each shard's lock; concurrent traffic may land between shards,
  /// so the snapshot is consistent per shard, not globally — fine for the
  /// end-of-batch reporting it exists for.
  IoStats StatsSnapshot() const;

  /// Resets the per-shard counters (keeps resident pages).
  void ResetStats();

  /// Binds every shard's counters to `registry` under one shared `prefix`
  /// (the registry counters are thread-safe, so the shards simply share
  /// them). Pass nullptr to unbind. See BufferPool::BindMetrics.
  void BindMetrics(obs::MetricsRegistry* registry, const std::string& prefix);

  uint32_t ResidentPages() const;

  /// Shard a page maps to (exposed for tests).
  uint32_t ShardOf(PageId id) const;

 private:
  // Each shard on its own cache line so neighboring locks don't false-share.
  struct alignas(64) Shard {
    explicit Shard(uint32_t capacity) : pool(capacity) {}
    mutable Mutex mu;
    BufferPool pool SGTREE_GUARDED_BY(mu);
  };

  uint32_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace sgtree

#endif  // SGTREE_STORAGE_SHARDED_BUFFER_POOL_H_
