#ifndef SGTREE_STORAGE_PAGE_CACHE_H_
#define SGTREE_STORAGE_PAGE_CACHE_H_

#include "storage/page.h"

namespace sgtree {

/// Abstract page-buffer interface the I/O-accounting layer charges against.
/// Two implementations exist: the single-threaded BufferPool (one LRU list,
/// no locking) and the ShardedBufferPool (lock-striped shards, safe to hit
/// from many query threads at once).
class PageCache {
 public:
  virtual ~PageCache() = default;

  /// Records a read of `id`. Returns true on a buffer hit; a miss is charged
  /// as one random I/O in the implementation's stats.
  virtual bool Touch(PageId id) = 0;

  /// Records a write of `id` (also makes the page resident).
  virtual void TouchWrite(PageId id) = 0;

  /// Drops `id` from the buffer (page freed).
  virtual void Evict(PageId id) = 0;

  /// Empties the buffer (but keeps cumulative stats).
  virtual void Clear() = 0;
};

}  // namespace sgtree

#endif  // SGTREE_STORAGE_PAGE_CACHE_H_
