#ifndef SGTREE_STORAGE_PAGE_H_
#define SGTREE_STORAGE_PAGE_H_

#include <cstdint>

namespace sgtree {

/// Identifier of a disk page. The SG-tree maps one node to one page ("using
/// multipage nodes is a potential implementation" per the paper; we use the
/// one-page-per-node layout).
using PageId = uint32_t;

inline constexpr PageId kInvalidPageId = static_cast<PageId>(-1);

/// Default page size in bytes. 4 KiB pages with signatures of a few hundred
/// bits yield node capacities "in the order of several tens", matching the
/// paper's setting.
inline constexpr uint32_t kDefaultPageSize = 4096;

}  // namespace sgtree

#endif  // SGTREE_STORAGE_PAGE_H_
