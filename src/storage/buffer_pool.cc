#include "storage/buffer_pool.h"

namespace sgtree {

bool BufferPool::Touch(PageId id) {
  ++stats_.page_accesses;
  auto it = index_.find(id);
  if (it != index_.end()) {
    ++stats_.buffer_hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++stats_.random_ios;
  Insert(id);
  return false;
}

void BufferPool::TouchWrite(PageId id) {
  ++stats_.page_writes;
  auto it = index_.find(id);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  Insert(id);
}

void BufferPool::Evict(PageId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  lru_.erase(it->second);
  index_.erase(it);
}

void BufferPool::Clear() {
  lru_.clear();
  index_.clear();
}

void BufferPool::Resize(uint32_t capacity) {
  capacity_ = capacity;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
}

void BufferPool::Insert(PageId id) {
  if (capacity_ == 0) return;
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(id);
  index_[id] = lru_.begin();
}

}  // namespace sgtree
