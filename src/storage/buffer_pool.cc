#include "storage/buffer_pool.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace sgtree {

BufferPool::BufferPool(uint32_t capacity) : capacity_(capacity) {
  frames_.resize(capacity_);
  for (uint32_t f = 0; f < capacity_; ++f) {
    frames_[f].next = f + 1 < capacity_ ? f + 1 : kNil;
  }
  free_head_ = capacity_ > 0 ? 0 : kNil;
  index_.reserve(capacity_);
}

void BufferPool::BindMetrics(obs::MetricsRegistry* registry,
                             const std::string& prefix) {
  if (registry == nullptr) {
    ctr_accesses_ = ctr_hits_ = ctr_misses_ = ctr_writes_ = nullptr;
    return;
  }
  ctr_accesses_ = registry->GetCounter(prefix + ".accesses");
  ctr_hits_ = registry->GetCounter(prefix + ".hits");
  ctr_misses_ = registry->GetCounter(prefix + ".misses");
  ctr_writes_ = registry->GetCounter(prefix + ".writes");
}

bool BufferPool::Touch(PageId id) {
  ++stats_.page_accesses;
  if (ctr_accesses_ != nullptr) ctr_accesses_->Increment();
  auto it = index_.find(id);
  if (it != index_.end()) {
    ++stats_.buffer_hits;
    if (ctr_hits_ != nullptr) ctr_hits_->Increment();
    const uint32_t f = it->second;
    if (f != head_) {
      Unlink(f);
      LinkFront(f);
    }
    return true;
  }
  ++stats_.random_ios;
  if (ctr_misses_ != nullptr) ctr_misses_->Increment();
  Insert(id);
  return false;
}

void BufferPool::TouchWrite(PageId id) {
  ++stats_.page_writes;
  if (ctr_writes_ != nullptr) ctr_writes_->Increment();
  auto it = index_.find(id);
  if (it != index_.end()) {
    const uint32_t f = it->second;
    if (f != head_) {
      Unlink(f);
      LinkFront(f);
    }
    return;
  }
  Insert(id);
}

void BufferPool::Evict(PageId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  const uint32_t f = it->second;
  index_.erase(it);
  Unlink(f);
  frames_[f].page = kInvalidPageId;
  frames_[f].next = free_head_;
  free_head_ = f;
}

void BufferPool::Clear() {
  index_.clear();
  head_ = tail_ = kNil;
  for (uint32_t f = 0; f < capacity_; ++f) {
    frames_[f].page = kInvalidPageId;
    frames_[f].prev = kNil;
    frames_[f].next = f + 1 < capacity_ ? f + 1 : kNil;
  }
  free_head_ = capacity_ > 0 ? 0 : kNil;
}

void BufferPool::Resize(uint32_t capacity) {
  // Snapshot resident pages MRU-first, then rebuild the frame table at the
  // new size and re-insert the survivors. Resize only happens in benchmark
  // setup, so simplicity beats in-place surgery.
  std::vector<PageId> resident;
  resident.reserve(index_.size());
  for (uint32_t f = head_; f != kNil; f = frames_[f].next) {
    resident.push_back(frames_[f].page);
  }
  capacity_ = capacity;
  frames_.assign(capacity_, Frame{});
  Clear();
  // Insert LRU-first so the MRU-first snapshot ends up in original order,
  // dropping the oldest pages when shrinking.
  const size_t keep = std::min<size_t>(resident.size(), capacity_);
  for (size_t i = keep; i-- > 0;) {
    Insert(resident[i]);
  }
}

void BufferPool::Insert(PageId id) {
  if (capacity_ == 0) return;
  uint32_t f;
  if (free_head_ != kNil) {
    f = free_head_;
    free_head_ = frames_[f].next;
  } else {
    f = EvictTail();
  }
  frames_[f].page = id;
  LinkFront(f);
  index_[id] = f;
}

void BufferPool::Unlink(uint32_t f) {
  Frame& frame = frames_[f];
  if (frame.prev != kNil) {
    frames_[frame.prev].next = frame.next;
  } else {
    head_ = frame.next;
  }
  if (frame.next != kNil) {
    frames_[frame.next].prev = frame.prev;
  } else {
    tail_ = frame.prev;
  }
  frame.prev = frame.next = kNil;
}

void BufferPool::LinkFront(uint32_t f) {
  Frame& frame = frames_[f];
  frame.prev = kNil;
  frame.next = head_;
  if (head_ != kNil) frames_[head_].prev = f;
  head_ = f;
  if (tail_ == kNil) tail_ = f;
}

uint32_t BufferPool::EvictTail() {
  SGTREE_ASSERT(tail_ != kNil);
  const uint32_t f = tail_;
  index_.erase(frames_[f].page);
  Unlink(f);
  frames_[f].page = kInvalidPageId;
  return f;
}

}  // namespace sgtree
