#include "baseline/linear_scan.h"

#include <algorithm>
#include <cstddef>
#include <limits>

namespace sgtree {

LinearScan::LinearScan(const Dataset& dataset) : num_bits_(dataset.num_items) {
  tids_.reserve(dataset.transactions.size());
  signatures_.reserve(dataset.transactions.size());
  for (const Transaction& txn : dataset.transactions) {
    tids_.push_back(txn.tid);
    signatures_.push_back(Signature::FromItems(txn.items, num_bits_));
  }
}

Neighbor LinearScan::Nearest(const Signature& query, Metric metric,
                             QueryStats* stats) const {
  return Nearest(query, metric, QueryContext{nullptr, stats, nullptr});
}

Neighbor LinearScan::Nearest(const Signature& query, Metric metric,
                             const QueryContext& ctx) const {
  Neighbor best{0, std::numeric_limits<double>::infinity()};
  for (size_t i = 0; i < signatures_.size(); ++i) {
    const double d = Distance(query, signatures_[i], metric);
    if (d < best.distance || (d == best.distance && tids_[i] < best.tid)) {
      best = {tids_[i], d};
    }
  }
  ctx.CountVerified(signatures_.size());
  ctx.TraceResults(signatures_.empty() ? 0 : 1);
  return best;
}

std::vector<Neighbor> LinearScan::KNearest(const Signature& query, uint32_t k,
                                           Metric metric,
                                           QueryStats* stats) const {
  return KNearest(query, k, metric, QueryContext{nullptr, stats, nullptr});
}

std::vector<Neighbor> LinearScan::KNearest(const Signature& query, uint32_t k,
                                           Metric metric,
                                           const QueryContext& ctx) const {
  std::vector<Neighbor> all;
  all.reserve(signatures_.size());
  for (size_t i = 0; i < signatures_.size(); ++i) {
    all.push_back({tids_[i], Distance(query, signatures_[i], metric)});
  }
  ctx.CountVerified(signatures_.size());
  const size_t keep = std::min<size_t>(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<ptrdiff_t>(keep),
                    all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance != b.distance
                                 ? a.distance < b.distance
                                 : a.tid < b.tid;
                    });
  all.resize(keep);
  ctx.TraceResults(all.size());
  return all;
}

std::vector<Neighbor> LinearScan::Range(const Signature& query, double epsilon,
                                        Metric metric,
                                        QueryStats* stats) const {
  return Range(query, epsilon, metric, QueryContext{nullptr, stats, nullptr});
}

std::vector<Neighbor> LinearScan::Range(const Signature& query, double epsilon,
                                        Metric metric,
                                        const QueryContext& ctx) const {
  std::vector<Neighbor> result;
  for (size_t i = 0; i < signatures_.size(); ++i) {
    const double d = Distance(query, signatures_[i], metric);
    if (d <= epsilon) result.push_back({tids_[i], d});
  }
  ctx.CountVerified(signatures_.size());
  ctx.TraceResults(result.size());
  ctx.TraceFalseDrops(signatures_.size() - result.size());
  std::sort(result.begin(), result.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.tid < b.tid;
            });
  return result;
}

std::vector<uint64_t> LinearScan::Containing(const Signature& query,
                                             const QueryContext& ctx) const {
  std::vector<uint64_t> result;
  for (size_t i = 0; i < signatures_.size(); ++i) {
    if (signatures_[i].Contains(query)) result.push_back(tids_[i]);
  }
  std::sort(result.begin(), result.end());
  ctx.CountVerified(signatures_.size());
  ctx.TraceResults(result.size());
  ctx.TraceFalseDrops(signatures_.size() - result.size());
  return result;
}

std::vector<uint64_t> LinearScan::ContainedIn(const Signature& query,
                                              const QueryContext& ctx) const {
  std::vector<uint64_t> result;
  for (size_t i = 0; i < signatures_.size(); ++i) {
    if (!signatures_[i].Empty() && query.Contains(signatures_[i])) {
      result.push_back(tids_[i]);
    }
  }
  std::sort(result.begin(), result.end());
  ctx.CountVerified(signatures_.size());
  ctx.TraceResults(result.size());
  ctx.TraceFalseDrops(signatures_.size() - result.size());
  return result;
}

}  // namespace sgtree
