#ifndef SGTREE_BASELINE_LINEAR_SCAN_H_
#define SGTREE_BASELINE_LINEAR_SCAN_H_

#include <cstdint>
#include <vector>

#include "common/distance.h"
#include "common/signature.h"
#include "common/stats.h"
#include "data/transaction.h"
#include "storage/query_context.h"

namespace sgtree {

/// A query answer: a transaction id with its exact distance to the query.
struct Neighbor {
  uint64_t tid = 0;
  double distance = 0;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

/// Exact sequential-scan index. Serves as ground truth for the tests and as
/// the "no index" comparator in the benchmarks. It materializes one
/// signature per transaction and answers every query by a full scan.
class LinearScan {
 public:
  /// Builds signatures for all transactions of `dataset`.
  explicit LinearScan(const Dataset& dataset);

  uint32_t num_bits() const { return num_bits_; }
  size_t size() const { return signatures_.size(); }

  // The context forms fill the per-query QueryTrace: a full scan verifies
  // every transaction (no nodes, no pruning — the honest baseline trace).
  // The QueryStats* forms are shorthand for a context carrying only stats.

  /// The single nearest neighbor (lowest tid wins ties).
  Neighbor Nearest(const Signature& query, Metric metric = Metric::kHamming,
                   QueryStats* stats = nullptr) const;
  Neighbor Nearest(const Signature& query, Metric metric,
                   const QueryContext& ctx) const;

  /// The k nearest neighbors, ascending distance, ties by tid.
  std::vector<Neighbor> KNearest(const Signature& query, uint32_t k,
                                 Metric metric = Metric::kHamming,
                                 QueryStats* stats = nullptr) const;
  std::vector<Neighbor> KNearest(const Signature& query, uint32_t k,
                                 Metric metric,
                                 const QueryContext& ctx) const;

  /// All transactions within distance `epsilon`, ascending distance.
  std::vector<Neighbor> Range(const Signature& query, double epsilon,
                              Metric metric = Metric::kHamming,
                              QueryStats* stats = nullptr) const;
  std::vector<Neighbor> Range(const Signature& query, double epsilon,
                              Metric metric, const QueryContext& ctx) const;

  /// All transactions whose item set contains every item of `query`.
  std::vector<uint64_t> Containing(const Signature& query,
                                   const QueryContext& ctx = {}) const;

  /// All non-empty transactions whose item set is a subset of `query`.
  std::vector<uint64_t> ContainedIn(const Signature& query,
                                    const QueryContext& ctx = {}) const;

 private:
  uint32_t num_bits_ = 0;
  std::vector<uint64_t> tids_;
  std::vector<Signature> signatures_;
};

}  // namespace sgtree

#endif  // SGTREE_BASELINE_LINEAR_SCAN_H_
