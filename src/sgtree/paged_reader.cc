#include "sgtree/paged_reader.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

#include "storage/node_format.h"

namespace sgtree {

PagedTreeImage FlushTreeToPages(const SgTree& tree, bool compress) {
  PagedTreeImage image;
  auto pages = std::make_unique<MemPageStore>(tree.options().page_size);

  // Allocate pages in live-node order, remembering the id remapping, then
  // encode with child references rewritten.
  const std::vector<PageId> live = tree.LiveNodes();
  std::unordered_map<PageId, PageId> remap;
  remap.reserve(live.size());
  for (PageId id : live) remap[id] = pages->Allocate();

  std::vector<uint8_t> payload;
  for (PageId id : live) {
    const Node& node = tree.GetNodeNoCharge(id);
    NodeRecord record;
    record.level = node.level;
    record.entries.reserve(node.entries.size());
    for (const Entry& entry : node.entries) {
      const uint64_t ref =
          node.IsLeaf() ? entry.ref
                        : remap.at(static_cast<PageId>(entry.ref));
      record.entries.emplace_back(ref, entry.sig);
    }
    payload.clear();
    EncodeNode(record, compress, &payload);
    if (!pages->Write(remap.at(id), payload)) {
      return {};  // Node image larger than a page.
    }
  }

  image.pages = std::move(pages);
  image.root =
      tree.root() == kInvalidPageId ? kInvalidPageId : remap.at(tree.root());
  image.num_bits = tree.num_bits();
  image.height = tree.height();
  image.size = tree.size();
  const auto [area_lo, area_hi] = tree.TransactionAreaBounds();
  image.area_lo = area_lo;
  image.area_hi = area_hi;
  image.max_entries = tree.max_entries();
  image.min_entries = tree.min_entries();
  return image;
}

PagedReader::PagedReader(const PagedTreeImage* image, const Options& options)
    : image_(image), options_(options) {
  SGTREE_ASSERT(image_ != nullptr && image_->pages != nullptr);
}

const Node& PagedReader::FetchNode(PageId id, QueryStats* stats) {
  if (stats != nullptr) ++stats->nodes_accessed;
  auto it = cache_.find(id);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.second);
    return it->second.first;
  }

  // Miss: decode the page image.
  ++pages_decoded_;
  if (stats != nullptr) ++stats->random_ios;
  std::vector<uint8_t> payload;
  const bool read_ok = image_->pages->Read(id, &payload);
  SGTREE_ASSERT_MSG(read_ok, "reference to a freed or invalid page");
  NodeRecord record;
  const bool decode_ok = DecodeNode(payload, image_->num_bits, &record);
  SGTREE_ASSERT_MSG(decode_ok, "page image does not decode");
  Node node;
  node.id = id;
  node.level = record.level;
  node.entries.reserve(record.entries.size());
  for (auto& [ref, sig] : record.entries) {
    node.entries.push_back(Entry{std::move(sig), ref});
  }

  if (cache_.size() >= options_.cache_pages && !lru_.empty()) {
    cache_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(id);
  auto [inserted, ok] =
      cache_.emplace(id, std::make_pair(std::move(node), lru_.begin()));
  SGTREE_ASSERT(ok);
  return inserted->second.first;
}

namespace {

bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  return a.distance != b.distance ? a.distance < b.distance : a.tid < b.tid;
}

}  // namespace

void PagedReader::KnnRecurse(PageId node_id, const Signature& query,
                             uint32_t k, std::vector<Neighbor>* heap,
                             QueryStats* stats) {
  // `node` may be evicted from the cache by recursive fetches, so copy the
  // pieces needed after recursion before descending.
  const Node& node = FetchNode(node_id, stats);
  auto tau = [&]() {
    return heap->size() < k ? std::numeric_limits<double>::infinity()
                            : heap->front().distance;
  };
  if (node.IsLeaf()) {
    if (stats != nullptr) stats->transactions_compared += node.entries.size();
    for (const Entry& entry : node.entries) {
      const Neighbor candidate{entry.ref,
                               Distance(query, entry.sig, options_.metric)};
      if (heap->size() < k) {
        heap->push_back(candidate);
        std::push_heap(heap->begin(), heap->end(), NeighborLess);
      } else if (NeighborLess(candidate, heap->front())) {
        std::pop_heap(heap->begin(), heap->end(), NeighborLess);
        heap->back() = candidate;
        std::push_heap(heap->begin(), heap->end(), NeighborLess);
      }
    }
    return;
  }

  struct Ordered {
    double bound;
    uint32_t area;
    PageId child;
  };
  std::vector<Ordered> order;
  order.reserve(node.entries.size());
  for (const Entry& entry : node.entries) {
    order.push_back({MinDistBoundAreaStats(query, entry.sig, options_.metric,
                                           image_->area_lo, image_->area_hi),
                     entry.sig.Area(), static_cast<PageId>(entry.ref)});
  }
  if (stats != nullptr) stats->bounds_computed += order.size();
  std::sort(order.begin(), order.end(), [](const Ordered& a,
                                           const Ordered& b) {
    return a.bound != b.bound ? a.bound < b.bound : a.area < b.area;
  });
  for (const Ordered& item : order) {
    if (item.bound >= tau()) break;
    KnnRecurse(item.child, query, k, heap, stats);
  }
}

Neighbor PagedReader::Nearest(const Signature& query, QueryStats* stats) {
  const auto result = KNearest(query, 1, stats);
  if (result.empty()) {
    return {0, std::numeric_limits<double>::infinity()};
  }
  return result.front();
}

std::vector<Neighbor> PagedReader::KNearest(const Signature& query,
                                            uint32_t k, QueryStats* stats) {
  std::vector<Neighbor> heap;
  if (image_->root != kInvalidPageId && k > 0) {
    KnnRecurse(image_->root, query, k, &heap, stats);
  }
  std::sort(heap.begin(), heap.end(), NeighborLess);
  return heap;
}

void PagedReader::RangeRecurse(PageId node_id, const Signature& query,
                               double epsilon, std::vector<Neighbor>* result,
                               QueryStats* stats) {
  const Node& node = FetchNode(node_id, stats);
  if (node.IsLeaf()) {
    if (stats != nullptr) stats->transactions_compared += node.entries.size();
    for (const Entry& entry : node.entries) {
      const double d = Distance(query, entry.sig, options_.metric);
      if (d <= epsilon) result->push_back({entry.ref, d});
    }
    return;
  }
  if (stats != nullptr) stats->bounds_computed += node.entries.size();
  std::vector<PageId> children;
  children.reserve(node.entries.size());
  for (const Entry& entry : node.entries) {
    if (MinDistBoundAreaStats(query, entry.sig, options_.metric,
                              image_->area_lo, image_->area_hi) <= epsilon) {
      children.push_back(static_cast<PageId>(entry.ref));
    }
  }
  // Recurse after collecting: FetchNode in the subtree may evict `node`.
  for (PageId child : children) {
    RangeRecurse(child, query, epsilon, result, stats);
  }
}

std::vector<Neighbor> PagedReader::Range(const Signature& query,
                                         double epsilon, QueryStats* stats) {
  std::vector<Neighbor> result;
  if (image_->root != kInvalidPageId) {
    RangeRecurse(image_->root, query, epsilon, &result, stats);
  }
  std::sort(result.begin(), result.end(), NeighborLess);
  return result;
}

void PagedReader::ContainRecurse(PageId node_id, const Signature& query,
                                 std::vector<uint64_t>* result,
                                 QueryStats* stats) {
  const Node& node = FetchNode(node_id, stats);
  if (node.IsLeaf()) {
    if (stats != nullptr) stats->transactions_compared += node.entries.size();
    for (const Entry& entry : node.entries) {
      if (entry.sig.Contains(query)) result->push_back(entry.ref);
    }
    return;
  }
  std::vector<PageId> children;
  for (const Entry& entry : node.entries) {
    if (entry.sig.Contains(query)) {
      children.push_back(static_cast<PageId>(entry.ref));
    }
  }
  for (PageId child : children) ContainRecurse(child, query, result, stats);
}

std::vector<uint64_t> PagedReader::Containing(const Signature& query,
                                              QueryStats* stats) {
  std::vector<uint64_t> result;
  if (image_->root != kInvalidPageId) {
    ContainRecurse(image_->root, query, &result, stats);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace sgtree
