#ifndef SGTREE_SGTREE_SEARCH_CORE_H_
#define SGTREE_SGTREE_SEARCH_CORE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "baseline/linear_scan.h"
#include "common/distance.h"
#include "common/signature.h"
#include "common/signature_ops.h"
#include "storage/page.h"
#include "storage/query_context.h"

namespace sgtree {

/// Templated cores of the six SG-tree search algorithms (Section 4),
/// instantiated for two tree representations:
///
///  - the dynamic heap tree (SgTree; sgtree/search.cc wraps the templates
///    behind the historical function signatures), and
///  - the immutable mmap'ed static tree (StaticTreeView, src/static).
///
/// A `Tree` must expose the SgTree read surface: `root()` (PageId,
/// kInvalidPageId when empty), `GetNode(PageId, const QueryContext&)`
/// (returning a node by reference or by value), `options().metric`, and
/// `TransactionAreaBounds()`. A node must expose `IsLeaf()`, `Count()`, and
/// `EntryAt(i)` yielding an entry with `.sig` (signature-like, see
/// common/signature_ops.h) and `.ref`.
///
/// Both instantiations therefore execute the same statements in the same
/// order: every pruning decision, every counter increment
/// (ctx.CountNode/CountBounds/CountVerified), and every trace event fires
/// identically, which is what the differential suite (tests/
/// test_static_tree.cc) pins down as full QueryResult equality.

/// Cross-partition pruning bound for scatter-gather k-NN: one atomic
/// "best k-th distance seen by any partition so far", shared by concurrent
/// searches over disjoint partitions of one logical index. Each search
/// prunes with min(local tau, Load()) and publishes its local tau whenever
/// its heap is full. Any published value is the k-th best of SOME k global
/// candidates, hence >= the final global k-th distance — so tightening with
/// it never discards a member of the canonical global answer, it only skips
/// subtrees another partition has already beaten. Per-query COUNTERS become
/// schedule-dependent when a bound is shared; the result VALUES do not.
class SharedPruneBound {
 public:
  double Load() const { return bound_.load(std::memory_order_relaxed); }

  /// Atomically lowers the bound to `candidate` if it improves on it.
  void PublishMin(double candidate) {
    double current = bound_.load(std::memory_order_relaxed);
    while (candidate < current &&
           !bound_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> bound_{std::numeric_limits<double>::infinity()};
};

namespace search_internal {

// Bounded max-heap of the k best neighbors found so far; the heap maximum
// (lexicographic by distance then tid) is the branch-and-bound threshold.
class NeighborHeap {
 public:
  explicit NeighborHeap(uint32_t k) : k_(k) {}

  double Tau() const {
    return heap_.size() < k_ ? std::numeric_limits<double>::infinity()
                             : heap_.front().distance;
  }

  void Offer(const Neighbor& candidate) {
    if (heap_.size() < k_) {
      heap_.push_back(candidate);
      std::push_heap(heap_.begin(), heap_.end(), Less);
      return;
    }
    if (Less(candidate, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), Less);
      heap_.back() = candidate;
      std::push_heap(heap_.begin(), heap_.end(), Less);
    }
  }

  std::vector<Neighbor> Sorted() && {
    std::sort(heap_.begin(), heap_.end(), Less);
    return std::move(heap_);
  }

 private:
  static bool Less(const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.tid < b.tid;
  }

  uint32_t k_;
  std::vector<Neighbor> heap_;  // Max-heap under Less.
};

struct BoundedEntry {
  double bound;
  uint32_t area;
  size_t index;
};

// Entries of a directory node sorted by (lower bound, area) — the visit
// order of Figure 4, including the minimum-area tie-break. Every entry's
// bound is computed (and counted as a signature test) before sorting.
template <typename Tree, typename NodeT>
std::vector<BoundedEntry> SortedBounds(const Tree& tree, const NodeT& node,
                                       const Signature& query,
                                       const QueryContext& ctx) {
  const Metric metric = tree.options().metric;
  const auto [lo, hi] = tree.TransactionAreaBounds();
  std::vector<BoundedEntry> order;
  order.reserve(node.Count());
  for (size_t i = 0; i < node.Count(); ++i) {
    const auto& entry = node.EntryAt(i);
    order.push_back({MinDistBoundAreaStatsOf(query, entry.sig, metric, lo, hi),
                     sig::Area(entry.sig), i});
  }
  ctx.CountBounds(order.size());
  std::sort(order.begin(), order.end(),
            [](const BoundedEntry& a, const BoundedEntry& b) {
              return a.bound != b.bound ? a.bound < b.bound
                                        : a.area < b.area;
            });
  return order;
}

// Pruning threshold: the local k-th-best distance, tightened by the
// cross-partition bound when one is attached. Subtrees are pruned only when
// their bound STRICTLY exceeds this — boundary-tied subtrees are descended
// so ties at the k-th distance resolve canonically by (distance, tid).
inline double PruneTau(const NeighborHeap& heap,
                       const SharedPruneBound* shared) {
  const double tau = heap.Tau();
  return shared != nullptr ? std::min(tau, shared->Load()) : tau;
}

template <typename Tree>
void DfsKnnRecurse(const Tree& tree, PageId node_id, const Signature& query,
                   NeighborHeap* heap, const QueryContext& ctx,
                   SharedPruneBound* shared) {
  const auto& node = tree.GetNode(node_id, ctx);
  ctx.CountNode(node.IsLeaf());
  const Metric metric = tree.options().metric;
  if (node.IsLeaf()) {
    ctx.CountVerified(node.Count());
    for (size_t i = 0; i < node.Count(); ++i) {
      const auto& entry = node.EntryAt(i);
      heap->Offer({entry.ref, DistanceOf(query, entry.sig, metric)});
    }
    // Publishing inf (heap not yet full) is a no-op inside PublishMin.
    if (shared != nullptr) shared->PublishMin(heap->Tau());
    return;
  }
  const std::vector<BoundedEntry> order = SortedBounds(tree, node, query, ctx);
  for (size_t oi = 0; oi < order.size(); ++oi) {
    if (order[oi].bound > PruneTau(*heap, shared)) {
      // Later entries bound even higher: this entry and everything after it
      // is cut by the distance bound.
      ctx.TracePruned(order.size() - oi);
      break;
    }
    ctx.TraceDescended(1);
    DfsKnnRecurse(tree,
                  static_cast<PageId>(node.EntryAt(order[oi].index).ref),
                  query, heap, ctx, shared);
  }
}

}  // namespace search_internal

/// Depth-first branch-and-bound k-NN (Figure 4); see sgtree/search.h for
/// the tie semantics every core shares.
template <typename Tree>
std::vector<Neighbor> DfsKNearestCore(const Tree& tree, const Signature& query,
                                      uint32_t k, const QueryContext& ctx,
                                      SharedPruneBound* shared = nullptr) {
  search_internal::NeighborHeap heap(k);
  if (tree.root() != kInvalidPageId && k > 0) {
    search_internal::DfsKnnRecurse(tree, tree.root(), query, &heap, ctx,
                                   shared);
  }
  std::vector<Neighbor> result = std::move(heap).Sorted();
  ctx.TraceResults(result.size());
  return result;
}

/// Optimal best-first k-NN (Hjaltason & Samet).
template <typename Tree>
std::vector<Neighbor> BestFirstKNearestCore(const Tree& tree,
                                            const Signature& query, uint32_t k,
                                            const QueryContext& ctx,
                                            SharedPruneBound* shared =
                                                nullptr) {
  search_internal::NeighborHeap heap(k);
  if (tree.root() == kInvalidPageId || k == 0) {
    return std::move(heap).Sorted();
  }
  const Metric metric = tree.options().metric;

  struct QueueItem {
    double bound;
    PageId node;
  };
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    return a.bound > b.bound;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> queue(
      cmp);
  queue.push({0.0, tree.root()});
  bool at_root = true;  // The root is enqueued without a signature test.
  while (!queue.empty()) {
    const QueueItem item = queue.top();
    queue.pop();
    if (item.bound > search_internal::PruneTau(heap, shared)) {
      // Optimal stopping condition (boundary-tied nodes are still visited
      // for canonical tie resolution). This item and everything left in the
      // queue was tested and enqueued but will never be visited.
      ctx.TracePruned(1 + queue.size());
      break;
    }
    if (at_root) {
      at_root = false;
    } else {
      ctx.TraceDescended(1);
    }
    const auto& node = tree.GetNode(item.node, ctx);
    ctx.CountNode(node.IsLeaf());
    if (node.IsLeaf()) {
      ctx.CountVerified(node.Count());
      for (size_t i = 0; i < node.Count(); ++i) {
        const auto& entry = node.EntryAt(i);
        heap.Offer({entry.ref, DistanceOf(query, entry.sig, metric)});
      }
      if (shared != nullptr) shared->PublishMin(heap.Tau());
      continue;
    }
    ctx.CountBounds(node.Count());
    const auto [lo, hi] = tree.TransactionAreaBounds();
    for (size_t i = 0; i < node.Count(); ++i) {
      const auto& entry = node.EntryAt(i);
      const double bound =
          MinDistBoundAreaStatsOf(query, entry.sig, metric, lo, hi);
      if (bound <= search_internal::PruneTau(heap, shared)) {
        queue.push({bound, static_cast<PageId>(entry.ref)});
      } else {
        ctx.TracePruned(1);
      }
    }
  }
  std::vector<Neighbor> result = std::move(heap).Sorted();
  ctx.TraceResults(result.size());
  return result;
}

namespace search_internal {

template <typename Tree>
void RangeRecurse(const Tree& tree, PageId node_id, const Signature& query,
                  double epsilon, std::vector<Neighbor>* result,
                  const QueryContext& ctx) {
  const auto& node = tree.GetNode(node_id, ctx);
  ctx.CountNode(node.IsLeaf());
  const Metric metric = tree.options().metric;
  if (node.IsLeaf()) {
    ctx.CountVerified(node.Count());
    uint64_t matched = 0;
    for (size_t i = 0; i < node.Count(); ++i) {
      const auto& entry = node.EntryAt(i);
      const double d = DistanceOf(query, entry.sig, metric);
      if (d <= epsilon) {
        result->push_back({entry.ref, d});
        ++matched;
      }
    }
    ctx.TraceResults(matched);
    ctx.TraceFalseDrops(node.Count() - matched);
    return;
  }
  ctx.CountBounds(node.Count());
  const auto [lo, hi] = tree.TransactionAreaBounds();
  for (size_t i = 0; i < node.Count(); ++i) {
    const auto& entry = node.EntryAt(i);
    const double bound =
        MinDistBoundAreaStatsOf(query, entry.sig, metric, lo, hi);
    if (bound <= epsilon) {
      ctx.TraceDescended(1);
      RangeRecurse(tree, static_cast<PageId>(entry.ref), query, epsilon,
                   result, ctx);
    } else {
      ctx.TracePruned(1);
    }
  }
}

template <typename Tree>
void ContainRecurse(const Tree& tree, PageId node_id, const Signature& query,
                    bool exact, std::vector<uint64_t>* result,
                    const QueryContext& ctx) {
  const auto& node = tree.GetNode(node_id, ctx);
  ctx.CountNode(node.IsLeaf());
  if (node.IsLeaf()) {
    ctx.CountVerified(node.Count());
    uint64_t matched = 0;
    for (size_t i = 0; i < node.Count(); ++i) {
      const auto& entry = node.EntryAt(i);
      const bool match = exact ? sig::Equal(entry.sig, query)
                               : sig::Contains(entry.sig, query);
      if (match) {
        result->push_back(entry.ref);
        ++matched;
      }
    }
    ctx.TraceResults(matched);
    ctx.TraceFalseDrops(node.Count() - matched);
    return;
  }
  ctx.CountBounds(node.Count());
  for (size_t i = 0; i < node.Count(); ++i) {
    const auto& entry = node.EntryAt(i);
    // Only subtrees whose signature covers the query can hold supersets.
    if (sig::Contains(entry.sig, query)) {
      ctx.TraceDescended(1);
      ContainRecurse(tree, static_cast<PageId>(entry.ref), query, exact,
                     result, ctx);
    } else {
      ctx.TracePruned(1);
    }
  }
}

template <typename Tree>
void SubsetRecurse(const Tree& tree, PageId node_id, const Signature& query,
                   std::vector<uint64_t>* result, const QueryContext& ctx) {
  const auto& node = tree.GetNode(node_id, ctx);
  ctx.CountNode(node.IsLeaf());
  if (node.IsLeaf()) {
    ctx.CountVerified(node.Count());
    uint64_t matched = 0;
    for (size_t i = 0; i < node.Count(); ++i) {
      const auto& entry = node.EntryAt(i);
      if (!sig::Empty(entry.sig) && sig::Contains(query, entry.sig)) {
        result->push_back(entry.ref);
        ++matched;
      }
    }
    ctx.TraceResults(matched);
    ctx.TraceFalseDrops(node.Count() - matched);
    return;
  }
  ctx.CountBounds(node.Count());
  for (size_t i = 0; i < node.Count(); ++i) {
    const auto& entry = node.EntryAt(i);
    // A non-empty subset of the query must share at least one item with
    // the subtree's coverage — the only (weak) pruning available.
    if (sig::IntersectCount(entry.sig, query) > 0) {
      ctx.TraceDescended(1);
      SubsetRecurse(tree, static_cast<PageId>(entry.ref), query, result, ctx);
    } else {
      ctx.TracePruned(1);
    }
  }
}

}  // namespace search_internal

/// Similarity range query: all transactions within `epsilon`, ascending by
/// (distance, tid).
template <typename Tree>
std::vector<Neighbor> RangeSearchCore(const Tree& tree, const Signature& query,
                                      double epsilon,
                                      const QueryContext& ctx) {
  std::vector<Neighbor> result;
  if (tree.root() != kInvalidPageId) {
    search_internal::RangeRecurse(tree, tree.root(), query, epsilon, &result,
                                  ctx);
  }
  std::sort(result.begin(), result.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.tid < b.tid;
            });
  return result;
}

/// Containment query: ids of supersets of `query`, ascending.
template <typename Tree>
std::vector<uint64_t> ContainmentSearchCore(const Tree& tree,
                                            const Signature& query,
                                            const QueryContext& ctx) {
  std::vector<uint64_t> result;
  if (tree.root() != kInvalidPageId) {
    search_internal::ContainRecurse(tree, tree.root(), query, /*exact=*/false,
                                    &result, ctx);
  }
  std::sort(result.begin(), result.end());
  return result;
}

/// Exact-match lookup: ids of transactions whose signature equals `query`.
template <typename Tree>
std::vector<uint64_t> ExactSearchCore(const Tree& tree,
                                      const Signature& query,
                                      const QueryContext& ctx) {
  std::vector<uint64_t> result;
  if (tree.root() != kInvalidPageId) {
    search_internal::ContainRecurse(tree, tree.root(), query, /*exact=*/true,
                                    &result, ctx);
  }
  std::sort(result.begin(), result.end());
  return result;
}

/// Subset query: ids of non-empty subsets of `query`, ascending.
template <typename Tree>
std::vector<uint64_t> SubsetSearchCore(const Tree& tree,
                                       const Signature& query,
                                       const QueryContext& ctx) {
  std::vector<uint64_t> result;
  if (tree.root() != kInvalidPageId) {
    search_internal::SubsetRecurse(tree, tree.root(), query, &result, ctx);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace sgtree

#endif  // SGTREE_SGTREE_SEARCH_CORE_H_
