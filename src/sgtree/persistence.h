#ifndef SGTREE_SGTREE_PERSISTENCE_H_
#define SGTREE_SGTREE_PERSISTENCE_H_

#include <memory>
#include <string>

#include "sgtree/sg_tree.h"

namespace sgtree {

/// Saves the tree to `path`: a header (magic, signature width, capacity
/// parameters, root id, height, size) followed by one length-prefixed
/// EncodeNode page image per node. Compression of sparse signatures
/// (Section 3.2) is applied when the tree's options request it. Returns
/// false on I/O failure.
bool SaveTree(const SgTree& tree, const std::string& path);

/// Rebuilds a tree saved by SaveTree. Returns nullptr on I/O failure or a
/// malformed file. Query/buffer options (metric, buffer pages, policies)
/// come from `runtime_options`; structural fields (num_bits, capacity) are
/// validated against the file header.
std::unique_ptr<SgTree> LoadTree(const std::string& path,
                                 const SgTreeOptions& runtime_options);

}  // namespace sgtree

#endif  // SGTREE_SGTREE_PERSISTENCE_H_
