#ifndef SGTREE_SGTREE_PERSISTENCE_H_
#define SGTREE_SGTREE_PERSISTENCE_H_

#include <memory>
#include <string>

#include "sgtree/sg_tree.h"

namespace sgtree {

/// Saves the tree to `path`: a header (magic, signature width, capacity
/// parameters, root id, height, size) followed by one length-prefixed
/// EncodeNode page image per node. Compression of sparse signatures
/// (Section 3.2) is applied when the tree's options request it.
///
/// The write is crash-atomic: the image lands in a temporary sibling file
/// that is fsynced and renamed over `path`, so a crash mid-save leaves the
/// previous file (or nothing), never a truncated tree. Returns false with
/// `*error` set (when non-null) on I/O failure.
bool SaveTree(const SgTree& tree, const std::string& path,
              std::string* error = nullptr);

/// Rebuilds a tree saved by SaveTree. Returns nullptr on I/O failure or a
/// malformed file, with `*error` (when non-null) naming the problem — a
/// truncated file is reported as such, not as a generic failure.
/// Query/buffer options (metric, buffer pages, policies) come from
/// `runtime_options`; structural fields (num_bits, capacity) are validated
/// against the file header.
std::unique_ptr<SgTree> LoadTree(const std::string& path,
                                 const SgTreeOptions& runtime_options,
                                 std::string* error = nullptr);

}  // namespace sgtree

#endif  // SGTREE_SGTREE_PERSISTENCE_H_
