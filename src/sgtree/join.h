#ifndef SGTREE_SGTREE_JOIN_H_
#define SGTREE_SGTREE_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "sgtree/sg_tree.h"

namespace sgtree {

/// Multi-tree queries (reconstruction of the paper's Section 4.2, whose page
/// is missing from the available scan; see DESIGN.md). Both adapt the
/// corresponding R-tree algorithms the paper cites: synchronized-traversal
/// similarity joins (Brinkhoff et al.) and best-first closest pairs
/// (Corral et al.).
///
/// Pruning uses PairMinDist, a lower bound on the distance between ANY
/// transaction below entry A and ANY transaction below entry B. For sets
/// under Hamming distance the bound is inherently weak at directory level
/// (two subtrees sharing any item may hold identical transactions), but
/// disjoint subtree pairs and leaf-level entries prune effectively; with
/// fixed dimensionality d (categorical data) the bound
/// 2 * (d - |sigA AND sigB|) is strong everywhere.

struct JoinPair {
  uint64_t tid_a = 0;
  uint64_t tid_b = 0;
  double distance = 0;

  friend bool operator==(const JoinPair&, const JoinPair&) = default;
};

/// Lower bound on the distance between transactions drawn from two covering
/// signatures. `leaf_a` / `leaf_b` mark exact (leaf-entry) signatures, which
/// tighten the bound considerably.
double PairMinDist(const Signature& a, bool leaf_a, const Signature& b,
                   bool leaf_b, Metric metric, uint32_t fixed_dimensionality);

/// All pairs (ta, tb), ta indexed by `a`, tb by `b`, with distance <=
/// epsilon. Pairs are sorted by (distance, tid_a, tid_b). The trees must
/// share signature width and metric.
///
/// The context form is thread-safe over const trees: each tree's node
/// accesses are charged to its own context (page ids are tree-local, so the
/// two trees must not share one pool); per-pair counters accumulate in
/// whichever context stats pointers are set. The convenience form charges
/// each tree's own buffer pool, like the search wrappers.
std::vector<JoinPair> SimilarityJoin(const SgTree& a, const SgTree& b,
                                     double epsilon,
                                     const QueryContext& ctx_a,
                                     const QueryContext& ctx_b);
std::vector<JoinPair> SimilarityJoin(SgTree& a, SgTree& b, double epsilon,
                                     QueryStats* stats = nullptr);

/// The k closest pairs between the two trees, ascending distance.
std::vector<JoinPair> ClosestPairs(const SgTree& a, const SgTree& b,
                                   uint32_t k, const QueryContext& ctx_a,
                                   const QueryContext& ctx_b);
std::vector<JoinPair> ClosestPairs(SgTree& a, SgTree& b, uint32_t k,
                                   QueryStats* stats = nullptr);

}  // namespace sgtree

#endif  // SGTREE_SGTREE_JOIN_H_
