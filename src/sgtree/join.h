#ifndef SGTREE_SGTREE_JOIN_H_
#define SGTREE_SGTREE_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "sgtree/sg_tree.h"

namespace sgtree {

/// Multi-tree queries (reconstruction of the paper's Section 4.2, whose page
/// is missing from the available scan; see DESIGN.md). Both adapt the
/// corresponding R-tree algorithms the paper cites: synchronized-traversal
/// similarity joins (Brinkhoff et al.) and best-first closest pairs
/// (Corral et al.).
///
/// Pruning uses PairMinDist, a lower bound on the distance between ANY
/// transaction below entry A and ANY transaction below entry B. For sets
/// under Hamming distance the bound is inherently weak at directory level
/// (two subtrees sharing any item may hold identical transactions), but
/// disjoint subtree pairs and leaf-level entries prune effectively; with
/// fixed dimensionality d (categorical data) the bound
/// 2 * (d - |sigA AND sigB|) is strong everywhere.

struct JoinPair {
  uint64_t tid_a = 0;
  uint64_t tid_b = 0;
  double distance = 0;

  friend bool operator==(const JoinPair&, const JoinPair&) = default;
};

/// Streaming consumer of join pairs. The join algorithms call OnPair once
/// per matching pair in traversal order (no global sort — multi-million-pair
/// outputs never have to materialize); returning false cancels the join,
/// which then returns false to its caller. The collection-level join API
/// (exec/join_api.h) builds on this seam.
class JoinSink {
 public:
  virtual ~JoinSink() = default;
  virtual bool OnPair(const JoinPair& pair) = 0;
};

/// Lower bound on the distance between transactions drawn from two covering
/// signatures. `leaf_a` / `leaf_b` mark exact (leaf-entry) signatures, which
/// tighten the bound considerably.
double PairMinDist(const Signature& a, bool leaf_a, const Signature& b,
                   bool leaf_b, Metric metric, uint32_t fixed_dimensionality);

/// All pairs (ta, tb), ta indexed by `a`, tb by `b`, with distance <=
/// epsilon. Pairs are sorted by (distance, tid_a, tid_b). The trees must
/// share signature width and metric.
///
/// The context form is thread-safe over const trees: each tree's node
/// accesses are charged to its own context (page ids are tree-local, so the
/// two trees must not share one pool); per-pair counters accumulate in
/// whichever context stats pointers are set. The convenience form charges
/// each tree's own buffer pool, like the search wrappers.
std::vector<JoinPair> SimilarityJoin(const SgTree& a, const SgTree& b,
                                     double epsilon,
                                     const QueryContext& ctx_a,
                                     const QueryContext& ctx_b);
std::vector<JoinPair> SimilarityJoin(SgTree& a, SgTree& b, double epsilon,
                                     QueryStats* stats = nullptr);

/// Streaming form of SimilarityJoin: pairs reach `sink` in traversal order
/// (NOT distance-sorted). Returns false iff the sink cancelled the join.
bool SimilarityJoinInto(const SgTree& a, const SgTree& b, double epsilon,
                        const QueryContext& ctx_a, const QueryContext& ctx_b,
                        JoinSink* sink);

/// Set-containment join R ⋈⊆ S: all pairs (ta, tb), ta indexed by `a`, tb
/// by `b`, whose item sets satisfy items(ta) ⊆ items(tb). An empty ta is
/// contained in every tb. The pair distance is the containment gap
/// |tb| - |ta| (well-defined because leaf signatures are exact item sets),
/// so every join backend reports identical distances for identical pairs.
///
/// The traversal descends the R side to its leaves and prunes the S side
/// with directory containment: an S child whose covering signature does not
/// contain some R leaf signature cannot hold a superset of it. R-side
/// directory signatures admit no such prune (any subset of a covering
/// signature, including the empty set, may live below), which is what makes
/// this the naive tree-vs-tree baseline the dedicated join backends in
/// src/join/ are benched against. Pairs are sorted by (tid_a, tid_b).
std::vector<JoinPair> ContainmentJoin(const SgTree& a, const SgTree& b,
                                      const QueryContext& ctx_a,
                                      const QueryContext& ctx_b);
std::vector<JoinPair> ContainmentJoin(SgTree& a, SgTree& b,
                                      QueryStats* stats = nullptr);

/// Streaming form: pairs in traversal order; false iff the sink cancelled.
bool ContainmentJoinInto(const SgTree& a, const SgTree& b,
                         const QueryContext& ctx_a, const QueryContext& ctx_b,
                         JoinSink* sink);

/// The k closest pairs between the two trees, ascending distance.
std::vector<JoinPair> ClosestPairs(const SgTree& a, const SgTree& b,
                                   uint32_t k, const QueryContext& ctx_a,
                                   const QueryContext& ctx_b);
std::vector<JoinPair> ClosestPairs(SgTree& a, SgTree& b, uint32_t k,
                                   QueryStats* stats = nullptr);

}  // namespace sgtree

#endif  // SGTREE_SGTREE_JOIN_H_
