#include "sgtree/invariant_auditor.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "storage/node_format.h"

namespace sgtree {

std::string_view AuditCheckName(AuditCheck check) {
  switch (check) {
    case AuditCheck::kStructure:
      return "structure";
    case AuditCheck::kCoverage:
      return "coverage";
    case AuditCheck::kLevel:
      return "level";
    case AuditCheck::kFill:
      return "fill";
    case AuditCheck::kSignatureWidth:
      return "signature-width";
    case AuditCheck::kDuplicateTid:
      return "duplicate-tid";
    case AuditCheck::kUnreachablePage:
      return "unreachable-page";
    case AuditCheck::kDanglingRef:
      return "dangling-ref";
    case AuditCheck::kPageDecode:
      return "page-decode";
  }
  return "unknown";
}

std::string AuditViolation::ToString() const {
  std::ostringstream out;
  out << AuditCheckName(check);
  if (page != kInvalidPageId) out << " @page " << page;
  out << ": " << detail;
  return out.str();
}

bool AuditReport::Has(AuditCheck check) const {
  for (const AuditViolation& v : violations) {
    if (v.check == check) return true;
  }
  return false;
}

std::string AuditReport::FirstMessage() const {
  return violations.empty() ? std::string() : violations.front().ToString();
}

std::string AuditReport::Summary() const {
  std::ostringstream out;
  if (ok()) {
    out << "all invariants hold\n";
  } else {
    out << total_violations << " violation(s)";
    if (total_violations > violations.size()) {
      out << " (showing first " << violations.size() << ")";
    }
    out << "\n";
    for (const AuditViolation& v : violations) {
      out << "  " << v.ToString() << "\n";
    }
  }
  out << "  height " << stats.height << ", " << stats.node_count
      << " nodes, " << stats.leaf_entries << " leaf entries, utilization "
      << stats.avg_utilization << " (min fill " << stats.min_fill << ")\n";
  return out.str();
}

namespace {

/// Shared recording, per-node checks and statistics for both tree forms.
struct Auditor {
  explicit Auditor(const AuditOptions& opts) : options(opts) {}

  AuditOptions options;
  AuditReport report;
  std::unordered_set<PageId> visited;
  std::unordered_map<uint64_t, PageId> tid_owner;  // tid -> first leaf page
  std::vector<uint64_t> area_sum;     // Per level.
  std::vector<uint64_t> entry_count;  // Per level.
  uint64_t non_root_nodes = 0;
  uint64_t non_root_entries = 0;

  uint32_t num_bits = 0;
  uint32_t max_entries = 0;  // 0 = unknown, capacity checks skipped.
  uint32_t min_entries = 0;

  void Violate(AuditCheck check, PageId page, std::string detail) {
    ++report.total_violations;
    if (report.violations.size() < options.max_violations) {
      report.violations.push_back({check, page, std::move(detail)});
    }
  }

  /// True the first time `id` is seen; records a structure violation (cycle
  /// or shared child) otherwise.
  bool MarkVisited(PageId id) {
    if (visited.insert(id).second) return true;
    Violate(AuditCheck::kStructure, id,
            "node reached twice (cycle or shared child)");
    return false;
  }

  /// Fill/width/tid checks plus statistics for one node; returns the OR of
  /// all well-formed entry signatures (the value the parent entry must
  /// carry).
  Signature CheckNode(const Node& node, PageId id, bool is_root) {
    ++report.stats.node_count;
    const uint32_t level = node.level;
    if (area_sum.size() <= level) {
      area_sum.resize(level + 1, 0);
      entry_count.resize(level + 1, 0);
    }

    if (max_entries > 0 && node.Count() > max_entries) {
      Violate(AuditCheck::kFill, id,
              "node has " + std::to_string(node.Count()) +
                  " entries, above capacity " + std::to_string(max_entries));
    }
    if (is_root) {
      if (!node.IsLeaf() && node.Count() < 2) {
        Violate(AuditCheck::kFill, id,
                "directory root has fewer than 2 entries");
      }
    } else {
      if (min_entries > 0 && node.Count() < min_entries) {
        Violate(AuditCheck::kFill, id,
                "node has " + std::to_string(node.Count()) +
                    " entries, below minimum fill " +
                    std::to_string(min_entries));
      }
      ++non_root_nodes;
      non_root_entries += node.Count();
      if (max_entries > 0) {
        const double fill = static_cast<double>(node.Count()) /
                            static_cast<double>(max_entries);
        if (fill < report.stats.min_fill) report.stats.min_fill = fill;
      }
    }

    Signature union_sig(num_bits);
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const Entry& entry = node.entries[i];
      if (entry.sig.num_bits() != num_bits) {
        Violate(AuditCheck::kSignatureWidth, id,
                "entry " + std::to_string(i) + " has width " +
                    std::to_string(entry.sig.num_bits()) +
                    ", tree width is " + std::to_string(num_bits));
        continue;  // Word counts differ; a union would read out of bounds.
      }
      union_sig.UnionWith(entry.sig);
      area_sum[level] += entry.sig.Area();
      ++entry_count[level];
      if (node.IsLeaf()) {
        ++report.stats.leaf_entries;
        if (options.check_tid_uniqueness) {
          const auto [it, inserted] = tid_owner.emplace(entry.ref, id);
          if (!inserted) {
            Violate(AuditCheck::kDuplicateTid, id,
                    "tid " + std::to_string(entry.ref) +
                        " already indexed by page " +
                        std::to_string(it->second));
          }
        }
      }
    }
    return union_sig;
  }

  /// Level and coverage checks for one directory entry against the child
  /// union returned by the recursive visit.
  void CheckParentEntry(PageId parent, size_t entry_index, const Entry& entry,
                        uint16_t parent_level, uint16_t child_level,
                        const Signature& child_union) {
    if (child_level + 1 != parent_level) {
      Violate(AuditCheck::kLevel, parent,
              "entry " + std::to_string(entry_index) + " child at level " +
                  std::to_string(child_level) + ", expected " +
                  std::to_string(parent_level - 1));
    }
    if (entry.sig.num_bits() == num_bits && !(entry.sig == child_union)) {
      // Name the first differing bit: "lost" bits break containment queries
      // (a covered transaction becomes unreachable), "excess" bits only cost
      // filtering precision. The distinction matters when triaging.
      std::string diff;
      for (uint32_t pos = 0; pos < num_bits; ++pos) {
        if (entry.sig.Test(pos) != child_union.Test(pos)) {
          diff = child_union.Test(pos) ? " (lost bit " + std::to_string(pos) +
                                             " of the child union)"
                                       : " (excess bit " +
                                             std::to_string(pos) +
                                             " not in the child union)";
          break;
        }
      }
      Violate(AuditCheck::kCoverage, parent,
              "entry " + std::to_string(entry_index) +
                  " signature is not the OR of child page " +
                  std::to_string(static_cast<PageId>(entry.ref)) +
                  "'s entries" + diff);
    }
  }

  void Finalize() {
    report.stats.avg_entry_area.assign(area_sum.size(), 0.0);
    for (size_t level = 0; level < area_sum.size(); ++level) {
      if (entry_count[level] > 0) {
        report.stats.avg_entry_area[level] =
            static_cast<double>(area_sum[level]) /
            static_cast<double>(entry_count[level]);
      }
    }
    if (non_root_nodes > 0 && max_entries > 0) {
      report.stats.avg_utilization =
          static_cast<double>(non_root_entries) /
          (static_cast<double>(non_root_nodes) *
           static_cast<double>(max_entries));
    }
  }
};

// ---------------------------------------------------------------------------
// In-memory tree walk.
// ---------------------------------------------------------------------------

Signature VisitTree(const SgTree& tree,
                    const std::unordered_set<PageId>& live, PageId id,
                    bool is_root, Auditor* a) {
  if (!a->MarkVisited(id)) return Signature(a->num_bits);
  const Node& node = tree.GetNodeNoCharge(id);
  const Signature union_sig = a->CheckNode(node, id, is_root);
  if (node.IsLeaf()) return union_sig;

  for (size_t i = 0; i < node.entries.size(); ++i) {
    const Entry& entry = node.entries[i];
    const auto child_id = static_cast<PageId>(entry.ref);
    if (live.count(child_id) == 0) {
      a->Violate(AuditCheck::kDanglingRef, id,
                 "entry " + std::to_string(i) + " references missing page " +
                     std::to_string(child_id));
      continue;
    }
    const Signature child_union =
        VisitTree(tree, live, child_id, /*is_root=*/false, a);
    a->CheckParentEntry(id, i, entry, node.level,
                        tree.GetNodeNoCharge(child_id).level, child_union);
  }
  return union_sig;
}

// ---------------------------------------------------------------------------
// Paged image walk: re-derives every invariant from raw page bytes.
// ---------------------------------------------------------------------------

struct PagedVisit {
  bool ok = false;  // Page was readable and decodable.
  uint16_t level = 0;
  Signature union_sig;
};

PagedVisit VisitPaged(const PageStoreInterface& pages, PageId id, bool is_root,
                      Auditor* a) {
  PagedVisit result;
  result.union_sig = Signature(a->num_bits);
  if (!a->MarkVisited(id)) return result;

  std::vector<uint8_t> payload;
  if (!pages.Read(id, &payload)) {
    a->Violate(AuditCheck::kDanglingRef, id, "page is freed or out of range");
    return result;
  }
  NodeRecord record;
  size_t consumed = 0;
  if (!DecodeNode(payload, a->num_bits, &record, &consumed)) {
    a->Violate(AuditCheck::kPageDecode, id, "page image does not decode");
    return result;
  }
  if (consumed != payload.size()) {
    a->Violate(AuditCheck::kPageDecode, id,
               std::to_string(payload.size() - consumed) +
                   " trailing byte(s) after the node image");
  }

  Node node;
  node.id = id;
  node.level = record.level;
  node.entries.reserve(record.entries.size());
  for (auto& [ref, sig] : record.entries) {
    node.entries.push_back(Entry{std::move(sig), ref});
  }

  result.ok = true;
  result.level = node.level;
  result.union_sig = a->CheckNode(node, id, is_root);
  if (node.IsLeaf()) return result;

  for (size_t i = 0; i < node.entries.size(); ++i) {
    const Entry& entry = node.entries[i];
    const auto child_id = static_cast<PageId>(entry.ref);
    const PagedVisit child = VisitPaged(pages, child_id, /*is_root=*/false, a);
    if (!child.ok) continue;
    a->CheckParentEntry(id, i, entry, node.level, child.level,
                        child.union_sig);
  }
  return result;
}

}  // namespace

AuditReport AuditTree(const SgTree& tree, const AuditOptions& options) {
  Auditor a(options);
  a.num_bits = tree.num_bits();
  a.max_entries = tree.max_entries();
  a.min_entries = tree.min_entries();
  a.report.stats.height = tree.height();

  const std::vector<PageId> live_ids = tree.LiveNodes();
  const std::unordered_set<PageId> live(live_ids.begin(), live_ids.end());

  if (tree.root() == kInvalidPageId) {
    if (tree.size() != 0) {
      a.Violate(AuditCheck::kStructure, kInvalidPageId,
                "empty tree with recorded size " +
                    std::to_string(tree.size()));
    }
    if (tree.height() != 0) {
      a.Violate(AuditCheck::kStructure, kInvalidPageId,
                "empty tree with recorded height " +
                    std::to_string(tree.height()));
    }
  } else if (live.count(tree.root()) == 0) {
    a.Violate(AuditCheck::kDanglingRef, tree.root(),
              "root references missing page");
  } else {
    const Node& root = tree.GetNodeNoCharge(tree.root());
    if (root.level + 1u != tree.height()) {
      a.Violate(AuditCheck::kStructure, tree.root(),
                "root at level " + std::to_string(root.level) +
                    ", recorded height is " + std::to_string(tree.height()));
    }
    VisitTree(tree, live, tree.root(), /*is_root=*/true, &a);
    if (a.report.stats.leaf_entries != tree.size()) {
      a.Violate(AuditCheck::kStructure, kInvalidPageId,
                "recorded size " + std::to_string(tree.size()) +
                    " != " + std::to_string(a.report.stats.leaf_entries) +
                    " leaf entries");
    }
    if (a.report.stats.node_count != tree.node_count()) {
      a.Violate(AuditCheck::kStructure, kInvalidPageId,
                "recorded node count " + std::to_string(tree.node_count()) +
                    " != " + std::to_string(a.report.stats.node_count) +
                    " reachable nodes");
    }
  }

  for (PageId id : live_ids) {
    if (a.visited.count(id) == 0) {
      a.Violate(AuditCheck::kUnreachablePage, id,
                "live page is not reachable from the root");
    }
  }

  a.Finalize();
  return a.report;
}

AuditReport AuditPagedImage(const PagedTreeImage& image,
                            const AuditOptions& options) {
  Auditor a(options);
  a.num_bits = image.num_bits;
  a.max_entries = image.max_entries;
  a.min_entries = image.min_entries;
  a.report.stats.height = image.height;

  if (image.pages == nullptr) {
    a.Violate(AuditCheck::kStructure, kInvalidPageId,
              "image has no page store");
    a.Finalize();
    return a.report;
  }
  const PageStoreInterface& pages = *image.pages;

  if (image.root == kInvalidPageId) {
    if (image.size != 0) {
      a.Violate(AuditCheck::kStructure, kInvalidPageId,
                "empty image with recorded size " +
                    std::to_string(image.size));
    }
    if (image.height != 0) {
      a.Violate(AuditCheck::kStructure, kInvalidPageId,
                "empty image with recorded height " +
                    std::to_string(image.height));
    }
  } else {
    const PagedVisit root =
        VisitPaged(pages, image.root, /*is_root=*/true, &a);
    if (root.ok && root.level + 1u != image.height) {
      a.Violate(AuditCheck::kStructure, image.root,
                "root at level " + std::to_string(root.level) +
                    ", recorded height is " + std::to_string(image.height));
    }
    if (a.report.stats.leaf_entries != image.size) {
      a.Violate(AuditCheck::kStructure, kInvalidPageId,
                "recorded size " + std::to_string(image.size) +
                    " != " + std::to_string(a.report.stats.leaf_entries) +
                    " leaf entries");
    }
  }

  // Page-level referential integrity: every live page must have been
  // reached exactly once (MarkVisited catches "more than once").
  std::vector<uint8_t> scratch;
  for (PageId id = 0; id < pages.TotalPages(); ++id) {
    if (pages.Read(id, &scratch) && a.visited.count(id) == 0) {
      a.Violate(AuditCheck::kUnreachablePage, id,
                "live page is not reachable from the root");
    }
  }

  a.Finalize();
  return a.report;
}

}  // namespace sgtree
