#include "sgtree/choose_subtree.h"

#include <cstdint>
#include <limits>

#include "common/check.h"

namespace sgtree {
namespace {

// Overlap increase with siblings if entries[index] is enlarged to cover sig.
uint64_t OverlapIncrease(const Node& node, size_t index,
                         const Signature& sig) {
  Signature enlarged = node.entries[index].sig;
  enlarged.UnionWith(sig);
  uint64_t increase = 0;
  for (size_t j = 0; j < node.entries.size(); ++j) {
    if (j == index) continue;
    const Signature& other = node.entries[j].sig;
    increase += Signature::IntersectCount(enlarged, other) -
                Signature::IntersectCount(node.entries[index].sig, other);
  }
  return increase;
}

}  // namespace

size_t ChooseSubtree(const Node& node, const Signature& sig,
                     ChooseSubtreePolicy policy) {
  SGTREE_ASSERT(!node.entries.empty());

  // Cases 1 and 2: prefer entries that already contain the signature; among
  // those, the one with minimum area.
  size_t best_containing = node.entries.size();
  uint32_t best_containing_area = std::numeric_limits<uint32_t>::max();
  for (size_t i = 0; i < node.entries.size(); ++i) {
    if (node.entries[i].sig.Contains(sig)) {
      const uint32_t area = node.entries[i].sig.Area();
      if (area < best_containing_area) {
        best_containing_area = area;
        best_containing = i;
      }
    }
  }
  if (best_containing != node.entries.size()) return best_containing;

  // Case 3: no entry contains the signature. The fused
  // EnlargementAndArea computes both ranking keys in one pass over the
  // entry's words instead of two.
  if (policy == ChooseSubtreePolicy::kMinEnlargement) {
    size_t best = 0;
    uint32_t best_enlargement = std::numeric_limits<uint32_t>::max();
    uint32_t best_area = std::numeric_limits<uint32_t>::max();
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const auto [enlargement, area] =
          Signature::EnlargementAndArea(node.entries[i].sig, sig);
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = i;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    return best;
  }

  // kMinOverlap.
  size_t best = 0;
  uint64_t best_overlap = std::numeric_limits<uint64_t>::max();
  uint32_t best_enlargement = std::numeric_limits<uint32_t>::max();
  uint32_t best_area = std::numeric_limits<uint32_t>::max();
  for (size_t i = 0; i < node.entries.size(); ++i) {
    const uint64_t overlap = OverlapIncrease(node, i, sig);
    const auto [enlargement, area] =
        Signature::EnlargementAndArea(node.entries[i].sig, sig);
    const bool better =
        overlap < best_overlap ||
        (overlap == best_overlap &&
         (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)));
    if (better) {
      best = i;
      best_overlap = overlap;
      best_enlargement = enlargement;
      best_area = area;
    }
  }
  return best;
}

}  // namespace sgtree
