#ifndef SGTREE_SGTREE_SEARCH_H_
#define SGTREE_SGTREE_SEARCH_H_

#include <cstdint>
#include <vector>

#include "baseline/linear_scan.h"
#include "common/signature.h"
#include "common/stats.h"
#include "sgtree/search_core.h"
#include "sgtree/sg_tree.h"
#include "storage/query_context.h"

namespace sgtree {

/// Similarity search and related queries over the SG-tree (Section 4).
///
/// Every query comes in two forms:
///
///  - A context form taking `const SgTree&` plus a QueryContext. The tree is
///    never mutated; node accesses are charged to the context's pool and the
///    per-query counters (including this query's random-I/O misses) to the
///    context's stats. This is the thread-safe entry point the parallel
///    QueryExecutor uses — any number of these may run concurrently against
///    one tree, each with a private pool or a shared ShardedBufferPool.
///
///  - A serial convenience form taking `SgTree&` plus an optional
///    QueryStats*, which charges the tree's own buffer pool (the historical
///    behavior). Requiring a non-const tree here is deliberate: charging the
///    embedded pool is a mutation, so `const SgTree` now really means
///    "thread-safe to read". These wrappers are LEGACY: new code should go
///    through the unified query API (exec/query_api.h) — build a
///    QueryRequest and call Execute() on an IndexBackend — which adds
///    parameter validation and works across every backend and the sharded
///    router. The wrappers stay for the paper-figure benches and old tests.
///
/// k-NN tie semantics: both k-NN variants return the canonical k-minimum
/// under the total order (distance, tid). Subtrees whose optimistic bound
/// EQUALS the current k-th best distance are descended rather than pruned,
/// so boundary ties always resolve to the smallest tids — the answer set is
/// a pure function of the data, independent of tree shape, insertion order,
/// or partitioning. (The paper's Figure 4 prunes on "not below", which can
/// return either tied transaction; determinism is what lets the sharded
/// scatter-gather merge reproduce the single-tree answer byte for byte.)

// SharedPruneBound (the cross-partition k-NN pruning bound) and the
// algorithm bodies now live in sgtree/search_core.h as templates shared
// with the static mmap'ed tree; the functions below instantiate them for
// SgTree.

/// Depth-first branch-and-bound nearest-neighbor search (Figure 4): child
/// entries are visited in ascending order of the optimistic lower bound
/// MinDistBound(q, e), ties broken by minimum entry area; a subtree is
/// pruned when its bound strictly exceeds the best distance found so far
/// (see the tie-semantics note above).
Neighbor DfsNearest(const SgTree& tree, const Signature& query,
                    const QueryContext& ctx);
[[deprecated(
    "legacy serial wrapper; build a QueryRequest and call Execute() on an "
    "SgTreeBackend (exec/query_api.h), or use the const-tree + QueryContext "
    "form. Removal schedule: DESIGN.md section 11.4")]]
Neighbor DfsNearest(SgTree& tree, const Signature& query,
                    QueryStats* stats = nullptr);  // LEGACY; see note above.

/// k-nearest-neighbor variant: the single best-so-far is replaced by a
/// size-k priority queue whose maximum is the pruning bound. Results are
/// ascending by (distance, tid). `shared`, when non-null, attaches the
/// cross-partition bound described on SharedPruneBound.
std::vector<Neighbor> DfsKNearest(const SgTree& tree, const Signature& query,
                                  uint32_t k, const QueryContext& ctx,
                                  SharedPruneBound* shared = nullptr);
[[deprecated(
    "legacy serial wrapper; build a QueryRequest and call Execute() on an "
    "SgTreeBackend (exec/query_api.h), or use the const-tree + QueryContext "
    "form. Removal schedule: DESIGN.md section 11.4")]]
std::vector<Neighbor> DfsKNearest(SgTree& tree, const Signature& query,
                                  uint32_t k,
                                  QueryStats* stats = nullptr);  // LEGACY.

/// Optimal best-first nearest neighbor (Hjaltason & Samet): a global
/// priority queue over (bound, node); never reads a node whose bound
/// strictly exceeds the final k-th distance (boundary-tied nodes are
/// visited for canonical tie resolution).
std::vector<Neighbor> BestFirstKNearest(const SgTree& tree,
                                        const Signature& query, uint32_t k,
                                        const QueryContext& ctx,
                                        SharedPruneBound* shared = nullptr);
[[deprecated(
    "legacy serial wrapper; build a QueryRequest and call Execute() on an "
    "SgTreeBackend (exec/query_api.h), or use the const-tree + QueryContext "
    "form. Removal schedule: DESIGN.md section 11.4")]]
std::vector<Neighbor> BestFirstKNearest(SgTree& tree, const Signature& query,
                                        uint32_t k,
                                        QueryStats* stats = nullptr);  // LEGACY.

/// Similarity range query: all transactions within distance `epsilon` of
/// the query, ascending by distance (ties by tid). Subtrees with
/// MinDistBound > epsilon are pruned.
std::vector<Neighbor> RangeSearch(const SgTree& tree, const Signature& query,
                                  double epsilon, const QueryContext& ctx);
[[deprecated(
    "legacy serial wrapper; build a QueryRequest and call Execute() on an "
    "SgTreeBackend (exec/query_api.h), or use the const-tree + QueryContext "
    "form. Removal schedule: DESIGN.md section 11.4")]]
std::vector<Neighbor> RangeSearch(SgTree& tree, const Signature& query,
                                  double epsilon,
                                  QueryStats* stats = nullptr);  // LEGACY.

/// Itemset containment query (Section 3 example): all transactions whose
/// item set is a superset of `query`. Follows only entries whose signature
/// contains the query signature.
std::vector<uint64_t> ContainmentSearch(const SgTree& tree,
                                        const Signature& query,
                                        const QueryContext& ctx);
[[deprecated(
    "legacy serial wrapper; build a QueryRequest and call Execute() on an "
    "SgTreeBackend (exec/query_api.h), or use the const-tree + QueryContext "
    "form. Removal schedule: DESIGN.md section 11.4")]]
std::vector<uint64_t> ContainmentSearch(SgTree& tree, const Signature& query,
                                        QueryStats* stats = nullptr);  // LEGACY.

/// Exact-match lookup: ids of transactions whose signature equals `query`.
std::vector<uint64_t> ExactSearch(const SgTree& tree, const Signature& query,
                                  const QueryContext& ctx);
[[deprecated(
    "legacy serial wrapper; build a QueryRequest and call Execute() on an "
    "SgTreeBackend (exec/query_api.h), or use the const-tree + QueryContext "
    "form. Removal schedule: DESIGN.md section 11.4")]]
std::vector<uint64_t> ExactSearch(SgTree& tree, const Signature& query,
                                  QueryStats* stats = nullptr);  // LEGACY.

/// Subset query: all non-empty transactions whose item set is a SUBSET of
/// `query`. The only available pruning is that a subtree is skipped when
/// its signature shares no item with the query — per the paper's related
/// work ([14], Helmer & Moerkotte), signature trees are a poor fit for this
/// query type (inverted files win); provided for completeness and measured
/// honestly in bench_containment_methods.
std::vector<uint64_t> SubsetSearch(const SgTree& tree, const Signature& query,
                                   const QueryContext& ctx);
[[deprecated(
    "legacy serial wrapper; build a QueryRequest and call Execute() on an "
    "SgTreeBackend (exec/query_api.h), or use the const-tree + QueryContext "
    "form. Removal schedule: DESIGN.md section 11.4")]]
std::vector<uint64_t> SubsetSearch(SgTree& tree, const Signature& query,
                                   QueryStats* stats = nullptr);  // LEGACY.

}  // namespace sgtree

#endif  // SGTREE_SGTREE_SEARCH_H_
