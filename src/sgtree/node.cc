#include "sgtree/node.h"

namespace sgtree {

Signature Node::UnionSignature(uint32_t num_bits) const {
  Signature sig(num_bits);
  for (const Entry& entry : entries) sig.UnionWith(entry.sig);
  return sig;
}

}  // namespace sgtree
