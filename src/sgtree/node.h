#ifndef SGTREE_SGTREE_NODE_H_
#define SGTREE_SGTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "common/signature.h"
#include "storage/page.h"

namespace sgtree {

/// One node entry: a signature plus either a child page (directory node) or
/// a transaction id (leaf node). A directory entry's signature is the OR of
/// all signatures in the node it points to — i.e. the signature of every
/// transaction in that subtree (coverage property, Definition 5).
struct Entry {
  Signature sig;
  uint64_t ref = 0;
};

/// One SG-tree node = one disk page. Level 0 is the leaf level.
struct Node {
  PageId id = kInvalidPageId;
  uint16_t level = 0;
  std::vector<Entry> entries;

  bool IsLeaf() const { return level == 0; }
  uint32_t Count() const { return static_cast<uint32_t>(entries.size()); }
  /// Uniform entry accessor shared with StaticNodeView, so the templated
  /// search cores (search_core.h) read either node representation through
  /// one spelling.
  const Entry& EntryAt(size_t i) const { return entries[i]; }

  /// OR of all entry signatures — the signature the parent entry must carry.
  Signature UnionSignature(uint32_t num_bits) const;
};

}  // namespace sgtree

#endif  // SGTREE_SGTREE_NODE_H_
