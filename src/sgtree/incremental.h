#ifndef SGTREE_SGTREE_INCREMENTAL_H_
#define SGTREE_SGTREE_INCREMENTAL_H_

#include <optional>
#include <queue>
#include <vector>

#include "baseline/linear_scan.h"
#include "common/stats.h"
#include "sgtree/sg_tree.h"

namespace sgtree {

/// Incremental nearest-neighbor iteration ("distance browsing", Hjaltason
/// & Samet TODS'99 — the paper's reference [15] for the optimal search).
/// Yields the indexed transactions in ascending distance from the query,
/// expanding tree nodes lazily: fetching the first few neighbors of a
/// large collection touches only a handful of nodes, and the caller can
/// stop at any point — the natural building block for "give me results
/// until I say stop" interfaces and for all-ties NN semantics.
///
/// The iterator holds a reference to the tree; it must not outlive it, and
/// the tree must not be modified while iterating.
class NearestIterator {
 public:
  /// Thread-safe form: node accesses are charged to `ctx` (see search.h for
  /// the context/convenience split).
  NearestIterator(const SgTree& tree, Signature query,
                  const QueryContext& ctx);
  /// Serial convenience: charges the tree's own buffer pool.
  NearestIterator(SgTree& tree, Signature query, QueryStats* stats = nullptr);

  /// The next closest transaction, or nullopt when exhausted. Equal
  /// distances are yielded in ascending tid order.
  std::optional<Neighbor> Next();

  /// Lower bound on the distance of whatever Next() would return, without
  /// advancing (infinity when exhausted).
  double PeekDistance();

 private:
  struct Item {
    double key;          // Exact distance (entries) or lower bound (nodes).
    bool is_entry;
    uint64_t ref;        // Tid for entries, PageId for nodes.

    // Min-queue order: smaller key first; at equal key expand nodes before
    // yielding entries (a node may still contain an equal-distance, lower-
    // tid transaction), then ascending tid.
    bool operator>(const Item& other) const {
      if (key != other.key) return key > other.key;
      if (is_entry != other.is_entry) return is_entry && !other.is_entry;
      return ref > other.ref;
    }
  };

  void ExpandUntilEntryOnTop();

  const SgTree& tree_;
  Signature query_;
  QueryContext ctx_;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
};

/// All nearest neighbors that tie at the minimum distance (the paper's
/// Section 4.1 "all nearest neighbors with the same minimum distance"
/// variant), in ascending tid order. Empty for an empty tree.
std::vector<Neighbor> AllNearest(const SgTree& tree, const Signature& query,
                                 const QueryContext& ctx);
std::vector<Neighbor> AllNearest(SgTree& tree, const Signature& query,
                                 QueryStats* stats = nullptr);

}  // namespace sgtree

#endif  // SGTREE_SGTREE_INCREMENTAL_H_
