#ifndef SGTREE_SGTREE_SG_TREE_H_
#define SGTREE_SGTREE_SG_TREE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/signature.h"
#include "data/transaction.h"
#include "sgtree/node.h"
#include "sgtree/options.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "storage/query_context.h"

namespace sgtree {

/// Observer of page-level changes made by the tree's update paths. The
/// durability layer registers one to learn which pages an operation
/// touched: the union of allocated + dirtied pages (minus freed ones) is
/// exactly the redo set the write-ahead log must carry for that operation.
/// Callbacks fire synchronously inside the mutation; implementations must
/// not reenter the tree.
class PageChangeListener {
 public:
  virtual ~PageChangeListener() = default;
  virtual void OnAlloc(PageId id) = 0;
  virtual void OnDirty(PageId id) = 0;
  virtual void OnFree(PageId id) = 0;
};

/// The signature tree (Section 3): a dynamic height-balanced paginated tree
/// over fixed-length bit signatures, structured like an R-tree with bitmap
/// containment/union taking the role of MBR containment/enlargement.
///
/// Nodes hold between m and M entries (except the root). Leaf entries carry
/// `(signature, transaction id)`; directory entries carry the OR of all
/// signatures in the child node. Inserts descend by ChooseSubtree and split
/// overflowing nodes with the configured policy; deletes dissolve
/// underflowing nodes and reinsert their entries (R-tree condense).
///
/// Every node access is routed through an LRU BufferPool so the exact
/// random-I/O cost of the access pattern is measured; see BufferPool.
class SgTree {
 public:
  explicit SgTree(const SgTreeOptions& options);
  /// Runs the tree over an injected page store (file-backed or
  /// fault-injecting). The store's page size must match the options'.
  SgTree(const SgTreeOptions& options,
         std::unique_ptr<PageStoreInterface> pages);

  SgTree(const SgTree&) = delete;
  SgTree& operator=(const SgTree&) = delete;
  SgTree(SgTree&&) = default;
  SgTree& operator=(SgTree&&) = default;

  // -- Updates ---------------------------------------------------------

  /// Inserts a transaction (signature built from its items).
  void Insert(const Transaction& txn);
  /// Inserts a pre-built signature with the given transaction id.
  void Insert(const Signature& sig, uint64_t tid);

  /// Removes the entry with this exact signature and id. Returns false if
  /// not present.
  bool Erase(const Transaction& txn);
  bool Erase(const Signature& sig, uint64_t tid);

  // -- Introspection ---------------------------------------------------

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Number of levels (0 for an empty tree, 1 for a root-only leaf).
  uint32_t height() const { return height_; }
  uint64_t node_count() const { return node_count_; }

  const SgTreeOptions& options() const { return options_; }
  uint32_t max_entries() const { return max_entries_; }
  uint32_t min_entries() const { return min_entries_; }
  uint32_t num_bits() const { return options_.num_bits; }

  PageId root() const { return root_; }

  /// [min, max] transaction size window used for bound tightening: the
  /// fixed dimensionality when configured; otherwise the observed range
  /// when area-stats tracking is on and data has been seen; otherwise the
  /// trivial window [0, num_bits].
  std::pair<uint32_t, uint32_t> TransactionAreaBounds() const;

  /// Records one indexed transaction's size (called by Insert; exposed for
  /// the bulk loader and persistence, which bypass Insert).
  void NoteTransactionArea(uint32_t area);

  /// Fetches a node for a query, charging the context's buffer pool and
  /// per-query stats. The tree itself is not mutated, so any number of
  /// threads may call this concurrently (each with its own context, or
  /// sharing a thread-safe PageCache) as long as no thread is updating the
  /// tree.
  const Node& GetNode(PageId id, const QueryContext& ctx) const;
  /// Fetches a node without I/O accounting (checker, persistence, tests).
  const Node& GetNodeNoCharge(PageId id) const;

  /// The tree's own buffer pool: charged by the update path and by the
  /// single-threaded query convenience wrappers (via OwnPoolContext).
  /// Mutating the pool requires a non-const tree — a const SgTree& is
  /// genuinely read-only and therefore safe to share across threads.
  BufferPool& buffer_pool() { return *pool_; }
  const BufferPool& buffer_pool() const { return *pool_; }

  /// Query context charging this tree's own pool (serial use only). The
  /// optional trace receives the per-query pruning breakdown.
  QueryContext OwnPoolContext(QueryStats* stats = nullptr,
                              QueryTrace* trace = nullptr) {
    return QueryContext{pool_.get(), stats, trace};
  }

  const IoStats& io_stats() const { return pool_->stats(); }
  /// Clears the buffer contents and counters (cold-cache measurements).
  void ResetIo();

  // -- Low-level node management (bulk loading and persistence) ---------

  /// Allocates an empty node at `level` and returns its id.
  PageId AllocateNode(uint16_t level);
  /// Materializes an empty node at a specific page id (crash recovery —
  /// the rebuilt tree must keep the page ids its log records). The id must
  /// not be live.
  Node* AdoptNode(PageId id, uint16_t level);
  /// Mutable access; charges a read and a write against the buffer pool.
  Node* MutableNode(PageId id);
  /// Frees a node page.
  void FreeNode(PageId id);
  /// Installs a new root (bulk loader / persistence). `size` is the number
  /// of indexed transactions, `height` the number of levels.
  void SetRoot(PageId root, uint32_t height, size_t size);
  /// Recounts nodes after external surgery (persistence).
  void SetNodeCount(uint64_t count) { node_count_ = count; }

  /// Ids of all live nodes (persistence, checker).
  std::vector<PageId> LiveNodes() const;

  /// Registers (or clears, with nullptr) the page-change observer. At most
  /// one listener; the durability layer owns it.
  void SetChangeListener(PageChangeListener* listener) {
    listener_ = listener;
  }
  PageChangeListener* change_listener() const { return listener_; }

  /// The tree's page-id allocator / persistence target.
  PageStoreInterface& page_store() { return *pages_; }
  const PageStoreInterface& page_store() const { return *pages_; }

 private:
  /// Inserts `entry` into a node at exactly `target_level` in the subtree
  /// rooted at `node_id`. Returns the id of a new sibling if the node split,
  /// kInvalidPageId otherwise.
  PageId InsertRecursive(PageId node_id, Entry entry, uint16_t target_level);

  /// Splits an overflowed node in place; returns the new sibling's id.
  PageId SplitNode(PageId node_id);

  /// Inserts an entry at a level, growing the tree if the root splits.
  void InsertEntryAtLevel(Entry entry, uint16_t level);

  enum class EraseResult { kNotFound, kRemoved };
  EraseResult EraseRecursive(PageId node_id, const Signature& sig,
                             uint64_t tid,
                             std::vector<std::pair<Entry, uint16_t>>* pending);

  /// Collapses single-entry directory roots after a delete.
  void ShrinkRoot();

  SgTreeOptions options_;
  uint32_t max_entries_ = 0;
  uint32_t min_entries_ = 0;

  std::unordered_map<PageId, std::unique_ptr<Node>> nodes_;
  std::unique_ptr<PageStoreInterface> pages_;  // Page-id allocator.
  std::unique_ptr<BufferPool> pool_;
  PageChangeListener* listener_ = nullptr;

  PageId root_ = kInvalidPageId;
  uint32_t height_ = 0;
  size_t size_ = 0;
  uint64_t node_count_ = 0;

  // Observed transaction-size window (never shrinks on delete; a stale
  // window only loosens, never unsounds, the bounds).
  uint32_t min_tx_area_ = std::numeric_limits<uint32_t>::max();
  uint32_t max_tx_area_ = 0;
};

}  // namespace sgtree

#endif  // SGTREE_SGTREE_SG_TREE_H_
