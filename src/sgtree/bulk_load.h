#ifndef SGTREE_SGTREE_BULK_LOAD_H_
#define SGTREE_SGTREE_BULK_LOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "data/transaction.h"
#include "sgtree/sg_tree.h"

namespace sgtree {

/// Orderings for bottom-up packing — the three approaches Section 6
/// sketches for bulk loading.
enum class BulkLoadOrder {
  /// Sort by the Gray-code rank of the bitmap (space-filling-curve
  /// analogy).
  kGrayCode,
  /// Recursive bisection clustering: repeatedly pick two far-apart seed
  /// signatures and partition around them ("adapt categorical clustering
  /// algorithms for this purpose").
  kClusterPartition,
  /// MinHash ordering: sort by a few min-wise hashes of the item set, so
  /// Jaccard-similar transactions become neighbors ("hashing techniques
  /// can be used to group similar signatures together").
  kMinHash,
};

std::string BulkLoadOrderName(BulkLoadOrder order);

/// Bulk-loading parameters.
struct BulkLoadOptions {
  /// Leaf fill as a fraction of the node capacity (packed trees are usually
  /// built near-full; the paper suggests this as future work, analogous to
  /// space-filling-curve R-tree packing).
  double fill_fraction = 0.9;
  BulkLoadOrder order = BulkLoadOrder::kGrayCode;
  /// Seed for the randomized orderings (bisection, MinHash).
  uint64_t seed = 1;
};

/// Builds an SG-tree bottom-up from a dataset: transactions are sorted by
/// the Gray-code rank of their signature (Section 6: "sort the transactions
/// using gray codes as key, in analogy to using space-filling curves for
/// bulk-loading multidimensional data to an R-tree"), packed into leaves at
/// the requested fill, and the directory levels are packed on top.
std::unique_ptr<SgTree> BulkLoad(const Dataset& dataset,
                                 const SgTreeOptions& options,
                                 const BulkLoadOptions& bulk = {});

/// Same, from pre-built (signature, tid) pairs.
std::unique_ptr<SgTree> BulkLoadEntries(std::vector<Entry> leaf_entries,
                                        const SgTreeOptions& options,
                                        const BulkLoadOptions& bulk = {});

}  // namespace sgtree

#endif  // SGTREE_SGTREE_BULK_LOAD_H_
