#ifndef SGTREE_SGTREE_PAGED_READER_H_
#define SGTREE_SGTREE_PAGED_READER_H_

#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "baseline/linear_scan.h"
#include "common/distance.h"
#include "common/stats.h"
#include "sgtree/node.h"
#include "sgtree/sg_tree.h"
#include "storage/page_store.h"

namespace sgtree {

/// A read-only SG-tree image on "disk": every node serialized into one
/// MemPageStore page (sparse-signature compression per Section 3.2 when
/// requested). Produced by FlushTreeToPages below.
struct PagedTreeImage {
  std::unique_ptr<MemPageStore> pages;
  PageId root = kInvalidPageId;
  uint32_t num_bits = 0;
  uint32_t height = 0;
  size_t size = 0;
  /// Transaction-size window carried over from the source tree for the
  /// Section 6 statistics-tightened bounds.
  uint32_t area_lo = 0;
  uint32_t area_hi = 0;
  /// Node capacity window of the source tree, so the invariant auditor can
  /// verify fill-factor bounds against the serialized image. Zero means
  /// unknown (images produced before these fields existed).
  uint32_t max_entries = 0;
  uint32_t min_entries = 0;
};

/// Serializes a tree into a fresh MemPageStore. Returns an empty image
/// (pages == nullptr) if some node does not fit in a page — cannot happen
/// for trees whose capacity was derived from the page size with
/// compression at least as dense as the derivation assumed.
PagedTreeImage FlushTreeToPages(const SgTree& tree, bool compress);

/// Query engine over a PagedTreeImage: decodes pages on demand and keeps at
/// most `cache_pages` decoded nodes in an LRU cache, so queries run with
/// bounded memory no matter the index size — the deployment mode of a
/// disk-resident index. Every cache miss decodes one page and counts as a
/// random I/O in the per-query stats.
class PagedReader {
 public:
  struct Options {
    Metric metric = Metric::kHamming;
    uint32_t cache_pages = 64;
  };

  PagedReader(const PagedTreeImage* image, const Options& options);

  PagedReader(const PagedReader&) = delete;
  PagedReader& operator=(const PagedReader&) = delete;

  size_t size() const { return image_->size; }
  uint32_t num_bits() const { return image_->num_bits; }

  /// Cumulative pages decoded (cache misses) since construction.
  uint64_t pages_decoded() const { return pages_decoded_; }

  Neighbor Nearest(const Signature& query, QueryStats* stats = nullptr);
  std::vector<Neighbor> KNearest(const Signature& query, uint32_t k,
                                 QueryStats* stats = nullptr);
  std::vector<Neighbor> Range(const Signature& query, double epsilon,
                              QueryStats* stats = nullptr);
  std::vector<uint64_t> Containing(const Signature& query,
                                   QueryStats* stats = nullptr);

 private:
  /// Fetches a node, decoding its page on a cache miss.
  const Node& FetchNode(PageId id, QueryStats* stats);

  void KnnRecurse(PageId node_id, const Signature& query, uint32_t k,
                  std::vector<Neighbor>* heap, QueryStats* stats);
  void RangeRecurse(PageId node_id, const Signature& query, double epsilon,
                    std::vector<Neighbor>* result, QueryStats* stats);
  void ContainRecurse(PageId node_id, const Signature& query,
                      std::vector<uint64_t>* result, QueryStats* stats);

  const PagedTreeImage* image_;
  Options options_;
  uint64_t pages_decoded_ = 0;

  // LRU cache of decoded nodes (front = most recent).
  std::list<PageId> lru_;
  std::unordered_map<PageId,
                     std::pair<Node, std::list<PageId>::iterator>>
      cache_;
};

}  // namespace sgtree

#endif  // SGTREE_SGTREE_PAGED_READER_H_
