#ifndef SGTREE_SGTREE_TREE_CHECKER_H_
#define SGTREE_SGTREE_TREE_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sgtree/sg_tree.h"

namespace sgtree {

/// Structural report of an SG-tree; `ok == false` means an invariant is
/// broken and `message` names the first violation found. Besides
/// verification, the per-level average entry area is the quality metric the
/// paper's Table 1 reports for the split-policy comparison.
struct TreeReport {
  bool ok = true;
  std::string message;

  uint32_t height = 0;
  uint64_t node_count = 0;
  uint64_t leaf_entries = 0;
  /// Average entry area per level; index 0 = leaf level.
  std::vector<double> avg_entry_area;
  /// Average node fill (entries / capacity) over all non-root nodes.
  double avg_utilization = 0;
};

/// Verifies all SG-tree invariants by a full traversal (without charging
/// the buffer pool):
///   - every directory entry's signature equals the OR of its child's
///     entries (coverage property, Definition 5);
///   - child level == parent level - 1; all leaves at level 0;
///   - every non-root node has between m and M entries, the root between
///     2 and M when it is a directory;
///   - the recorded size/height/node counts match the traversal;
///   - every node is reachable exactly once.
TreeReport CheckTree(const SgTree& tree);

}  // namespace sgtree

#endif  // SGTREE_SGTREE_TREE_CHECKER_H_
