#ifndef SGTREE_SGTREE_TREE_CHECKER_H_
#define SGTREE_SGTREE_TREE_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sgtree/sg_tree.h"

namespace sgtree {

/// Compact structural report of an SG-tree; `ok == false` means an
/// invariant is broken and `message` names the first violation found.
/// Besides verification, the per-level average entry area is the quality
/// metric the paper's Table 1 reports for the split-policy comparison.
///
/// This is the historical single-verdict interface, now a thin wrapper over
/// the InvariantAuditor (sgtree/invariant_auditor.h), which reports every
/// violation with a machine-readable check id and also audits serialized
/// page images. New code that needs diagnostics should call AuditTree
/// directly.
struct TreeReport {
  bool ok = true;
  std::string message;

  uint32_t height = 0;
  uint64_t node_count = 0;
  uint64_t leaf_entries = 0;
  /// Average entry area per level; index 0 = leaf level.
  std::vector<double> avg_entry_area;
  /// Average node fill (entries / capacity) over all non-root nodes.
  double avg_utilization = 0;
};

/// Runs the full invariant audit (coverage, levels, fill bounds, tid
/// uniqueness, reachability, bookkeeping) by a complete traversal without
/// charging the buffer pool, and condenses the result into a TreeReport.
TreeReport CheckTree(const SgTree& tree);

}  // namespace sgtree

#endif  // SGTREE_SGTREE_TREE_CHECKER_H_
