#include "sgtree/persistence.h"

#include <cstring>
#include <fstream>
#include <unordered_map>
#include <vector>

#include "common/file_util.h"
#include "storage/node_format.h"

namespace sgtree {
namespace {

constexpr char kMagic[8] = {'S', 'G', 'T', 'R', 'E', 'E', '0', '1'};

template <typename T>
void WritePod(std::vector<uint8_t>* out, T value) {
  const auto* bytes = reinterpret_cast<const uint8_t*>(&value);
  out->insert(out->end(), bytes, bytes + sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

std::unique_ptr<SgTree> LoadFail(std::string* error,
                                 const std::string& message) {
  if (error != nullptr) *error = message;
  return nullptr;
}

}  // namespace

bool SaveTree(const SgTree& tree, const std::string& path,
              std::string* error) {
  std::vector<uint8_t> out;
  out.reserve(256);
  const auto* magic = reinterpret_cast<const uint8_t*>(kMagic);
  out.insert(out.end(), magic, magic + sizeof(kMagic));
  WritePod<uint32_t>(&out, tree.num_bits());
  WritePod<uint32_t>(&out, tree.max_entries());
  WritePod<uint8_t>(&out, tree.options().compress ? 1 : 0);
  const std::vector<PageId> live = tree.LiveNodes();
  WritePod<uint32_t>(&out, static_cast<uint32_t>(live.size()));
  WritePod<uint32_t>(&out, tree.root());
  WritePod<uint32_t>(&out, tree.height());
  WritePod<uint64_t>(&out, static_cast<uint64_t>(tree.size()));
  const auto [area_lo, area_hi] = tree.TransactionAreaBounds();
  WritePod<uint32_t>(&out, area_lo);
  WritePod<uint32_t>(&out, area_hi);

  std::vector<uint8_t> payload;
  for (PageId id : live) {
    const Node& node = tree.GetNodeNoCharge(id);
    NodeRecord record;
    record.level = node.level;
    record.entries.reserve(node.entries.size());
    for (const Entry& entry : node.entries) {
      record.entries.emplace_back(entry.ref, entry.sig);
    }
    payload.clear();
    EncodeNode(record, tree.options().compress, &payload);
    WritePod<uint32_t>(&out, id);
    WritePod<uint32_t>(&out, static_cast<uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
  }
  return AtomicWriteFile(path, out, error);
}

std::unique_ptr<SgTree> LoadTree(const std::string& path,
                                 const SgTreeOptions& runtime_options,
                                 std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return LoadFail(error, "cannot open " + path);

  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in) return LoadFail(error, path + ": truncated file (no header)");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return LoadFail(error, path + ": not a saved SG-tree (bad magic)");
  }

  uint32_t num_bits = 0;
  uint32_t max_entries = 0;
  uint8_t compress = 0;
  uint32_t node_count = 0;
  uint32_t root = 0;
  uint32_t height = 0;
  uint64_t size = 0;
  uint32_t area_lo = 0;
  uint32_t area_hi = 0;
  if (!ReadPod(in, &num_bits) || !ReadPod(in, &max_entries) ||
      !ReadPod(in, &compress) || !ReadPod(in, &node_count) ||
      !ReadPod(in, &root) || !ReadPod(in, &height) || !ReadPod(in, &size) ||
      !ReadPod(in, &area_lo) || !ReadPod(in, &area_hi)) {
    return LoadFail(error, path + ": truncated file (incomplete header)");
  }

  SgTreeOptions options = runtime_options;
  if (options.num_bits == 0) options.num_bits = num_bits;
  if (options.num_bits != num_bits) {
    return LoadFail(error, path + ": signature width mismatch (file has " +
                               std::to_string(num_bits) + " bits)");
  }
  options.max_entries = max_entries;
  if (options.ResolvedMaxEntries() != max_entries) {
    return LoadFail(error, path + ": node capacity mismatch");
  }

  auto tree = std::make_unique<SgTree>(options);
  if (area_lo <= area_hi && area_hi <= num_bits && size > 0) {
    tree->NoteTransactionArea(area_lo);
    tree->NoteTransactionArea(area_hi);
  }
  if (node_count == 0) {
    if (error != nullptr) error->clear();
    return tree;
  }

  // First pass: materialize nodes and the original-id -> new-id map.
  std::unordered_map<PageId, PageId> remap;
  std::unordered_map<PageId, NodeRecord> records;
  remap.reserve(node_count);
  records.reserve(node_count);
  std::vector<uint8_t> payload;
  for (uint32_t i = 0; i < node_count; ++i) {
    const std::string where = "node " + std::to_string(i + 1) + " of " +
                              std::to_string(node_count);
    uint32_t orig_id = 0;
    uint32_t length = 0;
    if (!ReadPod(in, &orig_id) || !ReadPod(in, &length)) {
      return LoadFail(error, path + ": truncated file (" + where + ")");
    }
    payload.resize(length);
    in.read(reinterpret_cast<char*>(payload.data()), length);
    if (!in) {
      return LoadFail(error, path + ": truncated file (" + where + ")");
    }
    NodeRecord record;
    if (!DecodeNode(payload, num_bits, &record)) {
      return LoadFail(error, path + ": " + where + " does not decode");
    }
    if (remap.count(orig_id) != 0) {
      return LoadFail(error, path + ": duplicate page id " +
                                 std::to_string(orig_id));
    }
    remap[orig_id] = tree->AllocateNode(record.level);
    records[orig_id] = std::move(record);
  }
  if (remap.count(root) == 0) {
    return LoadFail(error, path + ": root page " + std::to_string(root) +
                               " missing from the file");
  }

  // Second pass: fill entries, remapping child references.
  for (auto& [orig_id, record] : records) {
    Node* node = tree->MutableNode(remap[orig_id]);
    node->entries.reserve(record.entries.size());
    for (auto& [ref, sig] : record.entries) {
      uint64_t new_ref = ref;
      if (record.level > 0) {
        auto it = remap.find(static_cast<PageId>(ref));
        if (it == remap.end()) {
          return LoadFail(error, path + ": dangling child reference " +
                                     std::to_string(ref));
        }
        new_ref = it->second;
      }
      node->entries.push_back(Entry{std::move(sig), new_ref});
    }
  }
  tree->SetRoot(remap[root], height, size);
  tree->ResetIo();
  if (error != nullptr) error->clear();
  return tree;
}

}  // namespace sgtree
