#ifndef SGTREE_SGTREE_CHOOSE_SUBTREE_H_
#define SGTREE_SGTREE_CHOOSE_SUBTREE_H_

#include <cstddef>

#include "sgtree/node.h"
#include "sgtree/options.h"

namespace sgtree {

/// Picks the entry of directory node `node` under which to insert a new
/// signature `sig` (Section 3.1):
///
///   1. Exactly one entry contains `sig`  -> that entry.
///   2. Several entries contain `sig`     -> the one with minimum area
///      (refines the structure, like choosing the smallest covering MBR).
///   3. No entry contains `sig`:
///      - kMinEnlargement: minimum |e OR sig| - |e|; ties by minimum area.
///      - kMinOverlap: minimum overlap increase with the sibling entries
///        after enlargement; ties by enlargement, then area.
///
/// Returns the index of the chosen entry. `node` must not be empty.
size_t ChooseSubtree(const Node& node, const Signature& sig,
                     ChooseSubtreePolicy policy);

}  // namespace sgtree

#endif  // SGTREE_SGTREE_CHOOSE_SUBTREE_H_
