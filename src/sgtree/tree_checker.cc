#include "sgtree/tree_checker.h"

#include <sstream>
#include <unordered_set>

namespace sgtree {
namespace {

struct CheckState {
  TreeReport report;
  std::unordered_set<PageId> visited;
  std::vector<uint64_t> area_sum;    // Per level.
  std::vector<uint64_t> entry_count; // Per level.
  uint64_t non_root_nodes = 0;
  uint64_t non_root_entries = 0;

  void Fail(const std::string& message) {
    if (report.ok) {
      report.ok = false;
      report.message = message;
    }
  }
};

void Visit(const SgTree& tree, PageId node_id, bool is_root,
           CheckState* state) {
  if (!state->report.ok) return;
  if (!state->visited.insert(node_id).second) {
    state->Fail("node visited twice: " + std::to_string(node_id));
    return;
  }
  const Node& node = tree.GetNodeNoCharge(node_id);
  ++state->report.node_count;

  const uint32_t level = node.level;
  if (state->area_sum.size() <= level) {
    state->area_sum.resize(level + 1, 0);
    state->entry_count.resize(level + 1, 0);
  }

  // Capacity invariants.
  if (node.Count() > tree.max_entries()) {
    state->Fail("node over capacity: " + std::to_string(node_id));
    return;
  }
  if (is_root) {
    if (!node.IsLeaf() && node.Count() < 2) {
      state->Fail("directory root with fewer than 2 entries");
      return;
    }
  } else {
    if (node.Count() < tree.min_entries()) {
      state->Fail("node under minimum fill: " + std::to_string(node_id));
      return;
    }
    ++state->non_root_nodes;
    state->non_root_entries += node.Count();
  }

  for (const Entry& entry : node.entries) {
    if (entry.sig.num_bits() != tree.num_bits()) {
      state->Fail("entry signature width mismatch");
      return;
    }
    state->area_sum[level] += entry.sig.Area();
    ++state->entry_count[level];
    if (node.IsLeaf()) {
      ++state->report.leaf_entries;
      continue;
    }
    const auto child_id = static_cast<PageId>(entry.ref);
    const Node& child = tree.GetNodeNoCharge(child_id);
    if (child.level + 1 != node.level) {
      state->Fail("child level mismatch under node " +
                  std::to_string(node_id));
      return;
    }
    // Coverage property: the entry signature must be exactly the OR of the
    // child's entry signatures.
    if (!(entry.sig == child.UnionSignature(tree.num_bits()))) {
      state->Fail("directory signature is not the child union at node " +
                  std::to_string(node_id));
      return;
    }
    Visit(tree, child_id, /*is_root=*/false, state);
    if (!state->report.ok) return;
  }
}

}  // namespace

TreeReport CheckTree(const SgTree& tree) {
  CheckState state;
  if (tree.root() == kInvalidPageId) {
    if (tree.size() != 0) state.Fail("empty tree with nonzero size");
    if (tree.height() != 0) state.Fail("empty tree with nonzero height");
    return state.report;
  }

  const Node& root = tree.GetNodeNoCharge(tree.root());
  if (root.level + 1u != tree.height()) {
    state.Fail("recorded height does not match root level");
  }
  Visit(tree, tree.root(), /*is_root=*/true, &state);

  if (state.report.ok && state.report.leaf_entries != tree.size()) {
    std::ostringstream message;
    message << "recorded size " << tree.size() << " != leaf entries "
            << state.report.leaf_entries;
    state.Fail(message.str());
  }
  if (state.report.ok && state.report.node_count != tree.node_count()) {
    state.Fail("recorded node count mismatch");
  }

  state.report.height = tree.height();
  state.report.avg_entry_area.resize(state.area_sum.size(), 0.0);
  for (size_t level = 0; level < state.area_sum.size(); ++level) {
    if (state.entry_count[level] > 0) {
      state.report.avg_entry_area[level] =
          static_cast<double>(state.area_sum[level]) /
          static_cast<double>(state.entry_count[level]);
    }
  }
  if (state.non_root_nodes > 0) {
    state.report.avg_utilization =
        static_cast<double>(state.non_root_entries) /
        (static_cast<double>(state.non_root_nodes) * tree.max_entries());
  }
  return state.report;
}

}  // namespace sgtree
