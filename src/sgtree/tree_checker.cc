#include "sgtree/tree_checker.h"

#include "sgtree/invariant_auditor.h"

namespace sgtree {

TreeReport CheckTree(const SgTree& tree) {
  const AuditReport audit = AuditTree(tree);
  TreeReport report;
  report.ok = audit.ok();
  report.message = audit.FirstMessage();
  report.height = audit.stats.height;
  report.node_count = audit.stats.node_count;
  report.leaf_entries = audit.stats.leaf_entries;
  report.avg_entry_area = audit.stats.avg_entry_area;
  report.avg_utilization = audit.stats.avg_utilization;
  return report;
}

}  // namespace sgtree
