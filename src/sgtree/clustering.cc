#include "sgtree/clustering.h"

#include <algorithm>
#include <limits>

namespace sgtree {
namespace {

void CollectLeaves(const SgTree& tree, PageId node_id,
                   std::vector<LeafCluster>* clusters) {
  const Node& node = tree.GetNodeNoCharge(node_id);
  if (node.IsLeaf()) {
    LeafCluster cluster;
    cluster.signature = node.UnionSignature(tree.num_bits());
    cluster.tids.reserve(node.entries.size());
    for (const Entry& entry : node.entries) cluster.tids.push_back(entry.ref);
    clusters->push_back(std::move(cluster));
    return;
  }
  for (const Entry& entry : node.entries) {
    CollectLeaves(tree, static_cast<PageId>(entry.ref), clusters);
  }
}

}  // namespace

std::vector<LeafCluster> ClusterByLeaves(const SgTree& tree, uint32_t k) {
  std::vector<LeafCluster> clusters;
  if (tree.root() == kInvalidPageId || k == 0) return clusters;
  CollectLeaves(tree, tree.root(), &clusters);

  // Agglomerate: repeatedly merge the pair of clusters whose union
  // signatures are closest in Hamming distance.
  while (clusters.size() > k) {
    size_t best_a = 0;
    size_t best_b = 1;
    uint32_t best_dist = std::numeric_limits<uint32_t>::max();
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        const uint32_t d = Signature::XorCount(clusters[i].signature,
                                               clusters[j].signature);
        if (d < best_dist) {
          best_dist = d;
          best_a = i;
          best_b = j;
        }
      }
    }
    clusters[best_a].signature.UnionWith(clusters[best_b].signature);
    clusters[best_a].tids.insert(clusters[best_a].tids.end(),
                                 clusters[best_b].tids.begin(),
                                 clusters[best_b].tids.end());
    clusters.erase(clusters.begin() + best_b);
  }
  for (LeafCluster& cluster : clusters) {
    std::sort(cluster.tids.begin(), cluster.tids.end());
  }
  return clusters;
}

}  // namespace sgtree
