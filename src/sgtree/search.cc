#include "sgtree/search.h"

#include <limits>

#include "sgtree/search_core.h"

namespace sgtree {

// The algorithm bodies live in sgtree/search_core.h as templates shared
// with the static mmap'ed tree (src/static); these functions instantiate
// them for the dynamic SgTree.

Neighbor DfsNearest(const SgTree& tree, const Signature& query,
                    const QueryContext& ctx) {
  auto result = DfsKNearest(tree, query, 1, ctx);
  if (result.empty()) {
    return {0, std::numeric_limits<double>::infinity()};
  }
  return result.front();
}

std::vector<Neighbor> DfsKNearest(const SgTree& tree, const Signature& query,
                                  uint32_t k, const QueryContext& ctx,
                                  SharedPruneBound* shared) {
  return DfsKNearestCore(tree, query, k, ctx, shared);
}

std::vector<Neighbor> BestFirstKNearest(const SgTree& tree,
                                        const Signature& query, uint32_t k,
                                        const QueryContext& ctx,
                                        SharedPruneBound* shared) {
  return BestFirstKNearestCore(tree, query, k, ctx, shared);
}

std::vector<Neighbor> RangeSearch(const SgTree& tree, const Signature& query,
                                  double epsilon, const QueryContext& ctx) {
  return RangeSearchCore(tree, query, epsilon, ctx);
}

std::vector<uint64_t> ContainmentSearch(const SgTree& tree,
                                        const Signature& query,
                                        const QueryContext& ctx) {
  return ContainmentSearchCore(tree, query, ctx);
}

std::vector<uint64_t> ExactSearch(const SgTree& tree, const Signature& query,
                                  const QueryContext& ctx) {
  return ExactSearchCore(tree, query, ctx);
}

std::vector<uint64_t> SubsetSearch(const SgTree& tree, const Signature& query,
                                   const QueryContext& ctx) {
  return SubsetSearchCore(tree, query, ctx);
}

// ---------------------------------------------------------------------------
// Serial convenience wrappers: charge the tree's own buffer pool. LEGACY —
// new call sites should go through exec/query_api.h (Execute on a backend).
// ---------------------------------------------------------------------------

Neighbor DfsNearest(SgTree& tree, const Signature& query, QueryStats* stats) {
  return DfsNearest(tree, query, tree.OwnPoolContext(stats));
}

std::vector<Neighbor> DfsKNearest(SgTree& tree, const Signature& query,
                                  uint32_t k, QueryStats* stats) {
  return DfsKNearest(tree, query, k, tree.OwnPoolContext(stats));
}

std::vector<Neighbor> BestFirstKNearest(SgTree& tree, const Signature& query,
                                        uint32_t k, QueryStats* stats) {
  return BestFirstKNearest(tree, query, k, tree.OwnPoolContext(stats));
}

std::vector<Neighbor> RangeSearch(SgTree& tree, const Signature& query,
                                  double epsilon, QueryStats* stats) {
  return RangeSearch(tree, query, epsilon, tree.OwnPoolContext(stats));
}

std::vector<uint64_t> ContainmentSearch(SgTree& tree, const Signature& query,
                                        QueryStats* stats) {
  return ContainmentSearch(tree, query, tree.OwnPoolContext(stats));
}

std::vector<uint64_t> ExactSearch(SgTree& tree, const Signature& query,
                                  QueryStats* stats) {
  return ExactSearch(tree, query, tree.OwnPoolContext(stats));
}

std::vector<uint64_t> SubsetSearch(SgTree& tree, const Signature& query,
                                   QueryStats* stats) {
  return SubsetSearch(tree, query, tree.OwnPoolContext(stats));
}

}  // namespace sgtree
