#include "sgtree/search.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/distance.h"

namespace sgtree {
namespace {

// Bounded max-heap of the k best neighbors found so far; the heap maximum
// (lexicographic by distance then tid) is the branch-and-bound threshold.
class NeighborHeap {
 public:
  explicit NeighborHeap(uint32_t k) : k_(k) {}

  double Tau() const {
    return heap_.size() < k_ ? std::numeric_limits<double>::infinity()
                             : heap_.front().distance;
  }

  void Offer(const Neighbor& candidate) {
    if (heap_.size() < k_) {
      heap_.push_back(candidate);
      std::push_heap(heap_.begin(), heap_.end(), Less);
      return;
    }
    if (Less(candidate, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), Less);
      heap_.back() = candidate;
      std::push_heap(heap_.begin(), heap_.end(), Less);
    }
  }

  std::vector<Neighbor> Sorted() && {
    std::sort(heap_.begin(), heap_.end(), Less);
    return std::move(heap_);
  }

 private:
  static bool Less(const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.tid < b.tid;
  }

  uint32_t k_;
  std::vector<Neighbor> heap_;  // Max-heap under Less.
};

struct BoundedEntry {
  double bound;
  uint32_t area;
  size_t index;
};

// Entries of a directory node sorted by (lower bound, area) — the visit
// order of Figure 4, including the minimum-area tie-break. Every entry's
// bound is computed (and counted as a signature test) before sorting.
std::vector<BoundedEntry> SortedBounds(const SgTree& tree, const Node& node,
                                       const Signature& query,
                                       const QueryContext& ctx) {
  const Metric metric = tree.options().metric;
  const auto [lo, hi] = tree.TransactionAreaBounds();
  std::vector<BoundedEntry> order;
  order.reserve(node.entries.size());
  for (size_t i = 0; i < node.entries.size(); ++i) {
    order.push_back({MinDistBoundAreaStats(query, node.entries[i].sig,
                                           metric, lo, hi),
                     node.entries[i].sig.Area(), i});
  }
  ctx.CountBounds(order.size());
  std::sort(order.begin(), order.end(),
            [](const BoundedEntry& a, const BoundedEntry& b) {
              return a.bound != b.bound ? a.bound < b.bound
                                        : a.area < b.area;
            });
  return order;
}

// Pruning threshold: the local k-th-best distance, tightened by the
// cross-partition bound when one is attached. Subtrees are pruned only when
// their bound STRICTLY exceeds this — boundary-tied subtrees are descended
// so ties at the k-th distance resolve canonically by (distance, tid).
double PruneTau(const NeighborHeap& heap, const SharedPruneBound* shared) {
  const double tau = heap.Tau();
  return shared != nullptr ? std::min(tau, shared->Load()) : tau;
}

void DfsKnnRecurse(const SgTree& tree, PageId node_id, const Signature& query,
                   NeighborHeap* heap, const QueryContext& ctx,
                   SharedPruneBound* shared) {
  const Node& node = tree.GetNode(node_id, ctx);
  ctx.CountNode(node.IsLeaf());
  const Metric metric = tree.options().metric;
  if (node.IsLeaf()) {
    ctx.CountVerified(node.entries.size());
    for (const Entry& entry : node.entries) {
      heap->Offer({entry.ref, Distance(query, entry.sig, metric)});
    }
    // Publishing inf (heap not yet full) is a no-op inside PublishMin.
    if (shared != nullptr) shared->PublishMin(heap->Tau());
    return;
  }
  const std::vector<BoundedEntry> order = SortedBounds(tree, node, query, ctx);
  for (size_t oi = 0; oi < order.size(); ++oi) {
    if (order[oi].bound > PruneTau(*heap, shared)) {
      // Later entries bound even higher: this entry and everything after it
      // is cut by the distance bound.
      ctx.TracePruned(order.size() - oi);
      break;
    }
    ctx.TraceDescended(1);
    DfsKnnRecurse(tree, static_cast<PageId>(node.entries[order[oi].index].ref),
                  query, heap, ctx, shared);
  }
}

}  // namespace

Neighbor DfsNearest(const SgTree& tree, const Signature& query,
                    const QueryContext& ctx) {
  auto result = DfsKNearest(tree, query, 1, ctx);
  if (result.empty()) {
    return {0, std::numeric_limits<double>::infinity()};
  }
  return result.front();
}

std::vector<Neighbor> DfsKNearest(const SgTree& tree, const Signature& query,
                                  uint32_t k, const QueryContext& ctx,
                                  SharedPruneBound* shared) {
  NeighborHeap heap(k);
  if (tree.root() != kInvalidPageId && k > 0) {
    DfsKnnRecurse(tree, tree.root(), query, &heap, ctx, shared);
  }
  std::vector<Neighbor> result = std::move(heap).Sorted();
  ctx.TraceResults(result.size());
  return result;
}

std::vector<Neighbor> BestFirstKNearest(const SgTree& tree,
                                        const Signature& query, uint32_t k,
                                        const QueryContext& ctx,
                                        SharedPruneBound* shared) {
  NeighborHeap heap(k);
  if (tree.root() == kInvalidPageId || k == 0) {
    return std::move(heap).Sorted();
  }
  const Metric metric = tree.options().metric;

  struct QueueItem {
    double bound;
    PageId node;
  };
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    return a.bound > b.bound;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> queue(
      cmp);
  queue.push({0.0, tree.root()});
  bool at_root = true;  // The root is enqueued without a signature test.
  while (!queue.empty()) {
    const QueueItem item = queue.top();
    queue.pop();
    if (item.bound > PruneTau(heap, shared)) {
      // Optimal stopping condition (boundary-tied nodes are still visited
      // for canonical tie resolution). This item and everything left in the
      // queue was tested and enqueued but will never be visited.
      ctx.TracePruned(1 + queue.size());
      break;
    }
    if (at_root) {
      at_root = false;
    } else {
      ctx.TraceDescended(1);
    }
    const Node& node = tree.GetNode(item.node, ctx);
    ctx.CountNode(node.IsLeaf());
    if (node.IsLeaf()) {
      ctx.CountVerified(node.entries.size());
      for (const Entry& entry : node.entries) {
        heap.Offer({entry.ref, Distance(query, entry.sig, metric)});
      }
      if (shared != nullptr) shared->PublishMin(heap.Tau());
      continue;
    }
    ctx.CountBounds(node.entries.size());
    const auto [lo, hi] = tree.TransactionAreaBounds();
    for (const Entry& entry : node.entries) {
      const double bound =
          MinDistBoundAreaStats(query, entry.sig, metric, lo, hi);
      if (bound <= PruneTau(heap, shared)) {
        queue.push({bound, static_cast<PageId>(entry.ref)});
      } else {
        ctx.TracePruned(1);
      }
    }
  }
  std::vector<Neighbor> result = std::move(heap).Sorted();
  ctx.TraceResults(result.size());
  return result;
}

namespace {

void RangeRecurse(const SgTree& tree, PageId node_id, const Signature& query,
                  double epsilon, std::vector<Neighbor>* result,
                  const QueryContext& ctx) {
  const Node& node = tree.GetNode(node_id, ctx);
  ctx.CountNode(node.IsLeaf());
  const Metric metric = tree.options().metric;
  if (node.IsLeaf()) {
    ctx.CountVerified(node.entries.size());
    uint64_t matched = 0;
    for (const Entry& entry : node.entries) {
      const double d = Distance(query, entry.sig, metric);
      if (d <= epsilon) {
        result->push_back({entry.ref, d});
        ++matched;
      }
    }
    ctx.TraceResults(matched);
    ctx.TraceFalseDrops(node.entries.size() - matched);
    return;
  }
  ctx.CountBounds(node.entries.size());
  const auto [lo, hi] = tree.TransactionAreaBounds();
  for (const Entry& entry : node.entries) {
    const double bound =
        MinDistBoundAreaStats(query, entry.sig, metric, lo, hi);
    if (bound <= epsilon) {
      ctx.TraceDescended(1);
      RangeRecurse(tree, static_cast<PageId>(entry.ref), query, epsilon,
                   result, ctx);
    } else {
      ctx.TracePruned(1);
    }
  }
}

}  // namespace

std::vector<Neighbor> RangeSearch(const SgTree& tree, const Signature& query,
                                  double epsilon, const QueryContext& ctx) {
  std::vector<Neighbor> result;
  if (tree.root() != kInvalidPageId) {
    RangeRecurse(tree, tree.root(), query, epsilon, &result, ctx);
  }
  std::sort(result.begin(), result.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.tid < b.tid;
            });
  return result;
}

namespace {

void ContainRecurse(const SgTree& tree, PageId node_id, const Signature& query,
                    bool exact, std::vector<uint64_t>* result,
                    const QueryContext& ctx) {
  const Node& node = tree.GetNode(node_id, ctx);
  ctx.CountNode(node.IsLeaf());
  if (node.IsLeaf()) {
    ctx.CountVerified(node.entries.size());
    uint64_t matched = 0;
    for (const Entry& entry : node.entries) {
      const bool match =
          exact ? entry.sig == query : entry.sig.Contains(query);
      if (match) {
        result->push_back(entry.ref);
        ++matched;
      }
    }
    ctx.TraceResults(matched);
    ctx.TraceFalseDrops(node.entries.size() - matched);
    return;
  }
  ctx.CountBounds(node.entries.size());
  for (const Entry& entry : node.entries) {
    // Only subtrees whose signature covers the query can hold supersets.
    if (entry.sig.Contains(query)) {
      ctx.TraceDescended(1);
      ContainRecurse(tree, static_cast<PageId>(entry.ref), query, exact,
                     result, ctx);
    } else {
      ctx.TracePruned(1);
    }
  }
}

}  // namespace

std::vector<uint64_t> ContainmentSearch(const SgTree& tree,
                                        const Signature& query,
                                        const QueryContext& ctx) {
  std::vector<uint64_t> result;
  if (tree.root() != kInvalidPageId) {
    ContainRecurse(tree, tree.root(), query, /*exact=*/false, &result, ctx);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<uint64_t> ExactSearch(const SgTree& tree, const Signature& query,
                                  const QueryContext& ctx) {
  std::vector<uint64_t> result;
  if (tree.root() != kInvalidPageId) {
    ContainRecurse(tree, tree.root(), query, /*exact=*/true, &result, ctx);
  }
  std::sort(result.begin(), result.end());
  return result;
}

namespace {

void SubsetRecurse(const SgTree& tree, PageId node_id, const Signature& query,
                   std::vector<uint64_t>* result, const QueryContext& ctx) {
  const Node& node = tree.GetNode(node_id, ctx);
  ctx.CountNode(node.IsLeaf());
  if (node.IsLeaf()) {
    ctx.CountVerified(node.entries.size());
    uint64_t matched = 0;
    for (const Entry& entry : node.entries) {
      if (!entry.sig.Empty() && query.Contains(entry.sig)) {
        result->push_back(entry.ref);
        ++matched;
      }
    }
    ctx.TraceResults(matched);
    ctx.TraceFalseDrops(node.entries.size() - matched);
    return;
  }
  ctx.CountBounds(node.entries.size());
  for (const Entry& entry : node.entries) {
    // A non-empty subset of the query must share at least one item with
    // the subtree's coverage — the only (weak) pruning available.
    if (Signature::IntersectCount(entry.sig, query) > 0) {
      ctx.TraceDescended(1);
      SubsetRecurse(tree, static_cast<PageId>(entry.ref), query, result, ctx);
    } else {
      ctx.TracePruned(1);
    }
  }
}

}  // namespace

std::vector<uint64_t> SubsetSearch(const SgTree& tree, const Signature& query,
                                   const QueryContext& ctx) {
  std::vector<uint64_t> result;
  if (tree.root() != kInvalidPageId) {
    SubsetRecurse(tree, tree.root(), query, &result, ctx);
  }
  std::sort(result.begin(), result.end());
  return result;
}

// ---------------------------------------------------------------------------
// Serial convenience wrappers: charge the tree's own buffer pool. LEGACY —
// new call sites should go through exec/query_api.h (Execute on a backend).
// ---------------------------------------------------------------------------

Neighbor DfsNearest(SgTree& tree, const Signature& query, QueryStats* stats) {
  return DfsNearest(tree, query, tree.OwnPoolContext(stats));
}

std::vector<Neighbor> DfsKNearest(SgTree& tree, const Signature& query,
                                  uint32_t k, QueryStats* stats) {
  return DfsKNearest(tree, query, k, tree.OwnPoolContext(stats));
}

std::vector<Neighbor> BestFirstKNearest(SgTree& tree, const Signature& query,
                                        uint32_t k, QueryStats* stats) {
  return BestFirstKNearest(tree, query, k, tree.OwnPoolContext(stats));
}

std::vector<Neighbor> RangeSearch(SgTree& tree, const Signature& query,
                                  double epsilon, QueryStats* stats) {
  return RangeSearch(tree, query, epsilon, tree.OwnPoolContext(stats));
}

std::vector<uint64_t> ContainmentSearch(SgTree& tree, const Signature& query,
                                        QueryStats* stats) {
  return ContainmentSearch(tree, query, tree.OwnPoolContext(stats));
}

std::vector<uint64_t> ExactSearch(SgTree& tree, const Signature& query,
                                  QueryStats* stats) {
  return ExactSearch(tree, query, tree.OwnPoolContext(stats));
}

std::vector<uint64_t> SubsetSearch(SgTree& tree, const Signature& query,
                                   QueryStats* stats) {
  return SubsetSearch(tree, query, tree.OwnPoolContext(stats));
}

}  // namespace sgtree
