#include "sgtree/incremental.h"

#include <limits>
#include <utility>

#include "common/distance.h"

namespace sgtree {

NearestIterator::NearestIterator(const SgTree& tree, Signature query,
                                 const QueryContext& ctx)
    : tree_(tree), query_(std::move(query)), ctx_(ctx) {
  if (tree_.root() != kInvalidPageId) {
    queue_.push(Item{0.0, false, tree_.root()});
  }
}

NearestIterator::NearestIterator(SgTree& tree, Signature query,
                                 QueryStats* stats)
    : NearestIterator(tree, std::move(query), tree.OwnPoolContext(stats)) {}

void NearestIterator::ExpandUntilEntryOnTop() {
  const Metric metric = tree_.options().metric;
  const auto [area_lo, area_hi] = tree_.TransactionAreaBounds();
  while (!queue_.empty() && !queue_.top().is_entry) {
    const Item item = queue_.top();
    queue_.pop();
    const Node& node = tree_.GetNode(static_cast<PageId>(item.ref), ctx_);
    ctx_.CountNode(node.IsLeaf());
    if (node.IsLeaf()) {
      ctx_.CountVerified(node.entries.size());
      for (const Entry& entry : node.entries) {
        queue_.push(
            Item{Distance(query_, entry.sig, metric), true, entry.ref});
      }
    } else {
      ctx_.CountBounds(node.entries.size());
      for (const Entry& entry : node.entries) {
        queue_.push(Item{MinDistBoundAreaStats(query_, entry.sig, metric,
                                               area_lo, area_hi),
                         false, entry.ref});
      }
    }
  }
}

std::optional<Neighbor> NearestIterator::Next() {
  ExpandUntilEntryOnTop();
  if (queue_.empty()) return std::nullopt;
  const Item item = queue_.top();
  queue_.pop();
  return Neighbor{item.ref, item.key};
}

double NearestIterator::PeekDistance() {
  ExpandUntilEntryOnTop();
  return queue_.empty() ? std::numeric_limits<double>::infinity()
                        : queue_.top().key;
}

std::vector<Neighbor> AllNearest(SgTree& tree, const Signature& query,
                                 QueryStats* stats) {
  return AllNearest(tree, query, tree.OwnPoolContext(stats));
}

std::vector<Neighbor> AllNearest(const SgTree& tree, const Signature& query,
                                 const QueryContext& ctx) {
  std::vector<Neighbor> result;
  NearestIterator it(tree, query, ctx);
  const auto first = it.Next();
  if (!first.has_value()) return result;
  result.push_back(*first);
  // Drain every tie at the minimum distance.
  while (it.PeekDistance() == first->distance) {
    result.push_back(*it.Next());
  }
  return result;
}

}  // namespace sgtree
