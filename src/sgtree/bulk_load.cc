#include "sgtree/bulk_load.h"

#include <algorithm>
#include <array>
#include <limits>
#include <utility>

#include "common/gray_code.h"
#include "common/rng.h"

namespace sgtree {
namespace {

// Recursive bisection: pick two far-apart seed signatures (double sweep
// from a random start) and partition the range around them; recurse until
// ranges are leaf-sized. Entries end up ordered so that nearby ranges hold
// similar signatures.
void BisectOrder(std::vector<Entry>& entries, size_t lo, size_t hi,
                 size_t leaf_target, Rng& rng) {
  if (hi - lo <= leaf_target) return;
  // Double sweep for far-apart seeds.
  size_t start = lo + rng.UniformInt(hi - lo);
  size_t seed1 = lo;
  uint32_t best = 0;
  for (size_t i = lo; i < hi; ++i) {
    const uint32_t d =
        Signature::XorCount(entries[start].sig, entries[i].sig);
    if (d >= best) {
      best = d;
      seed1 = i;
    }
  }
  size_t seed2 = lo;
  best = 0;
  for (size_t i = lo; i < hi; ++i) {
    const uint32_t d =
        Signature::XorCount(entries[seed1].sig, entries[i].sig);
    if (d >= best && i != seed1) {
      best = d;
      seed2 = i;
    }
  }
  const Signature sig1 = entries[seed1].sig;
  const Signature sig2 = entries[seed2].sig;
  // Partition: entries closer to seed1 first. Hoare-style two-pointer to
  // keep it in place and O(n).
  size_t left = lo;
  size_t right = hi;
  while (left < right) {
    const uint32_t d1 = Signature::XorCount(entries[left].sig, sig1);
    const uint32_t d2 = Signature::XorCount(entries[left].sig, sig2);
    if (d1 <= d2) {
      ++left;
    } else {
      --right;
      std::swap(entries[left], entries[right]);
    }
  }
  // Degenerate partitions (identical signatures): split in the middle.
  if (left == lo || left == hi) left = lo + (hi - lo) / 2;
  BisectOrder(entries, lo, left, leaf_target, rng);
  BisectOrder(entries, left, hi, leaf_target, rng);
}

uint64_t MixHash(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Four min-wise hashes of the item set: Jaccard-similar transactions agree
// on each with probability equal to their similarity, so sorting by the
// hash tuple clusters similar sets.
std::array<uint64_t, 4> MinHashKey(const Signature& sig, uint64_t seed) {
  std::array<uint64_t, 4> key;
  key.fill(std::numeric_limits<uint64_t>::max());
  for (uint32_t item : sig.ToItems()) {
    for (size_t j = 0; j < key.size(); ++j) {
      const uint64_t h = MixHash(item * 0x9e3779b97f4a7c15ull + seed + j);
      key[j] = std::min(key[j], h);
    }
  }
  return key;
}

}  // namespace

std::string BulkLoadOrderName(BulkLoadOrder order) {
  switch (order) {
    case BulkLoadOrder::kGrayCode:
      return "gray-code";
    case BulkLoadOrder::kClusterPartition:
      return "cluster-bisect";
    case BulkLoadOrder::kMinHash:
      return "minhash";
  }
  return "unknown";
}

std::unique_ptr<SgTree> BulkLoad(const Dataset& dataset,
                                 const SgTreeOptions& options,
                                 const BulkLoadOptions& bulk) {
  std::vector<Entry> entries;
  entries.reserve(dataset.transactions.size());
  for (const Transaction& txn : dataset.transactions) {
    entries.push_back(
        Entry{Signature::FromItems(txn.items, options.num_bits), txn.tid});
  }
  return BulkLoadEntries(std::move(entries), options, bulk);
}

std::unique_ptr<SgTree> BulkLoadEntries(std::vector<Entry> leaf_entries,
                                        const SgTreeOptions& options,
                                        const BulkLoadOptions& bulk) {
  auto tree = std::make_unique<SgTree>(options);
  const size_t total = leaf_entries.size();
  if (total == 0) return tree;
  for (const Entry& entry : leaf_entries) {
    tree->NoteTransactionArea(entry.sig.Area());
  }

  const uint32_t max_entries = tree->max_entries();
  const uint32_t min_entries = tree->min_entries();
  uint32_t target = static_cast<uint32_t>(max_entries * bulk.fill_fraction);
  target = std::clamp(target, std::max(min_entries, 1u), max_entries);

  switch (bulk.order) {
    case BulkLoadOrder::kGrayCode:
      // Gray-code order clusters bitmaps that differ in few low bits.
      std::sort(leaf_entries.begin(), leaf_entries.end(),
                [](const Entry& a, const Entry& b) {
                  return GrayLess(a.sig, b.sig);
                });
      break;
    case BulkLoadOrder::kClusterPartition: {
      Rng rng(bulk.seed);
      BisectOrder(leaf_entries, 0, leaf_entries.size(), target, rng);
      break;
    }
    case BulkLoadOrder::kMinHash: {
      std::vector<std::pair<std::array<uint64_t, 4>, size_t>> keyed;
      keyed.reserve(leaf_entries.size());
      for (size_t i = 0; i < leaf_entries.size(); ++i) {
        keyed.emplace_back(MinHashKey(leaf_entries[i].sig, bulk.seed), i);
      }
      std::sort(keyed.begin(), keyed.end());
      std::vector<Entry> ordered;
      ordered.reserve(leaf_entries.size());
      for (const auto& [key, index] : keyed) {
        ordered.push_back(std::move(leaf_entries[index]));
      }
      leaf_entries = std::move(ordered);
      break;
    }
  }

  // Pack one level, returning the parent entries for the next.
  auto pack_level = [&](std::vector<Entry> level_entries, uint16_t level) {
    std::vector<Entry> parents;
    size_t i = 0;
    const size_t n = level_entries.size();
    while (i < n) {
      const size_t rest = n - i;
      size_t take;
      if (rest <= max_entries) {
        take = rest;  // Final node absorbs the tail (may exceed the target).
      } else {
        take = target;
        // Do not leave an underfull final node: shrink this one so the tail
        // keeps at least min_entries. Since min <= max/2, `take` stays
        // within [min_entries, max_entries].
        if (rest - take < min_entries) take = rest - min_entries;
      }
      const PageId id = tree->AllocateNode(level);
      Node* node = tree->MutableNode(id);
      node->entries.assign(std::make_move_iterator(level_entries.begin() + i),
                           std::make_move_iterator(level_entries.begin() + i +
                                                   take));
      parents.push_back(
          Entry{node->UnionSignature(options.num_bits), id});
      i += take;
    }
    return parents;
  };

  uint16_t level = 0;
  std::vector<Entry> current = std::move(leaf_entries);
  uint32_t height = 0;
  while (true) {
    std::vector<Entry> parents = pack_level(std::move(current), level);
    ++height;
    if (parents.size() == 1) {
      tree->SetRoot(static_cast<PageId>(parents[0].ref), height, total);
      break;
    }
    current = std::move(parents);
    ++level;
  }
  return tree;
}

}  // namespace sgtree
