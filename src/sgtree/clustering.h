#ifndef SGTREE_SGTREE_CLUSTERING_H_
#define SGTREE_SGTREE_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "sgtree/sg_tree.h"

namespace sgtree {

/// Index-accelerated clustering (Section 6 future work: "the tree could be
/// used to derive good clusters much faster, e.g. by merging the leaf nodes
/// using their signatures as guides").
///
/// Each SG-tree leaf already groups similar transactions; this helper treats
/// every leaf as a seed cluster (represented by its union signature) and
/// agglomeratively merges the closest cluster pair — Hamming distance
/// between cluster signatures — until `k` clusters remain. The cost is
/// O(L^2) in the number of leaves L, far below the O(n^2) of clustering raw
/// transactions.
struct LeafCluster {
  Signature signature;          // OR of all member transactions.
  std::vector<uint64_t> tids;   // Members.
};

std::vector<LeafCluster> ClusterByLeaves(const SgTree& tree, uint32_t k);

}  // namespace sgtree

#endif  // SGTREE_SGTREE_CLUSTERING_H_
