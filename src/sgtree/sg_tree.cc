#include "sgtree/sg_tree.h"

#include <algorithm>

#include "common/check.h"
#include "sgtree/choose_subtree.h"
#include "sgtree/split.h"
#include "storage/node_format.h"

namespace sgtree {

std::string SplitPolicyName(SplitPolicy policy) {
  switch (policy) {
    case SplitPolicy::kLinear:
      return "LinearSplit";
    case SplitPolicy::kQuadratic:
      return "QuadraticSplit";
    case SplitPolicy::kAverage:
      return "AvgSplit";
    case SplitPolicy::kMinimum:
      return "MinSplit";
  }
  return "unknown";
}

std::string ChooseSubtreePolicyName(ChooseSubtreePolicy policy) {
  switch (policy) {
    case ChooseSubtreePolicy::kMinEnlargement:
      return "MinEnlargement";
    case ChooseSubtreePolicy::kMinOverlap:
      return "MinOverlap";
  }
  return "unknown";
}

uint32_t SgTreeOptions::ResolvedMaxEntries() const {
  if (max_entries != 0) return max_entries;
  // Node header is 4 bytes; each uncompressed entry needs a ref plus the
  // dense signature encoding.
  const size_t entry_size = UncompressedEntrySize(num_bits);
  const size_t capacity = (page_size - 4) / entry_size;
  return static_cast<uint32_t>(std::max<size_t>(capacity, 4));
}

uint32_t SgTreeOptions::ResolvedMinEntries() const {
  const uint32_t max = ResolvedMaxEntries();
  auto min = static_cast<uint32_t>(max * min_fill_fraction);
  min = std::max<uint32_t>(min, 1);
  return std::min(min, max / 2);
}

SgTree::SgTree(const SgTreeOptions& options)
    : SgTree(options, std::make_unique<MemPageStore>(options.page_size)) {}

SgTree::SgTree(const SgTreeOptions& options,
               std::unique_ptr<PageStoreInterface> pages)
    : options_(options),
      max_entries_(options.ResolvedMaxEntries()),
      min_entries_(options.ResolvedMinEntries()),
      pages_(std::move(pages)),
      pool_(std::make_unique<BufferPool>(options.buffer_pages)) {
  SGTREE_ASSERT(options_.num_bits > 0);
  SGTREE_ASSERT(min_entries_ >= 1 && min_entries_ <= max_entries_ / 2);
  SGTREE_ASSERT_MSG(pages_->page_size() == options_.page_size,
                    "page store size mismatch");
}

const Node& SgTree::GetNode(PageId id, const QueryContext& ctx) const {
  ctx.ChargeRead(id);
  auto it = nodes_.find(id);
  SGTREE_DCHECK(it != nodes_.end());
  return *it->second;
}

const Node& SgTree::GetNodeNoCharge(PageId id) const {
  auto it = nodes_.find(id);
  SGTREE_ASSERT_MSG(it != nodes_.end(), "dangling page reference");
  return *it->second;
}

void SgTree::ResetIo() {
  pool_->Clear();
  pool_->mutable_stats()->Reset();
}

PageId SgTree::AllocateNode(uint16_t level) {
  const PageId id = pages_->Allocate();
  auto node = std::make_unique<Node>();
  node->id = id;
  node->level = level;
  nodes_[id] = std::move(node);
  ++node_count_;
  pool_->TouchWrite(id);
  if (listener_ != nullptr) listener_->OnAlloc(id);
  return id;
}

Node* SgTree::AdoptNode(PageId id, uint16_t level) {
  const bool reserved = pages_->Reserve(id);
  SGTREE_ASSERT_MSG(reserved, "AdoptNode on a live page id");
  SGTREE_ASSERT(nodes_.find(id) == nodes_.end());
  auto node = std::make_unique<Node>();
  node->id = id;
  node->level = level;
  Node* raw = node.get();
  nodes_[id] = std::move(node);
  ++node_count_;
  pool_->TouchWrite(id);
  if (listener_ != nullptr) listener_->OnAlloc(id);
  return raw;
}

Node* SgTree::MutableNode(PageId id) {
  pool_->Touch(id);
  pool_->TouchWrite(id);
  auto it = nodes_.find(id);
  SGTREE_ASSERT_MSG(it != nodes_.end(), "dangling page reference");
  if (listener_ != nullptr) listener_->OnDirty(id);
  return it->second.get();
}

void SgTree::FreeNode(PageId id) {
  pool_->Evict(id);
  nodes_.erase(id);
  pages_->Free(id);
  --node_count_;
  if (listener_ != nullptr) listener_->OnFree(id);
}

void SgTree::SetRoot(PageId root, uint32_t height, size_t size) {
  root_ = root;
  height_ = height;
  size_ = size;
}

std::vector<PageId> SgTree::LiveNodes() const {
  std::vector<PageId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

// ---------------------------------------------------------------------------
// Insertion (Figure 3 of the paper).
// ---------------------------------------------------------------------------

void SgTree::Insert(const Transaction& txn) {
  Insert(Signature::FromItems(txn.items, options_.num_bits), txn.tid);
}

void SgTree::Insert(const Signature& sig, uint64_t tid) {
  SGTREE_ASSERT(sig.num_bits() == options_.num_bits);
  NoteTransactionArea(sig.Area());
  InsertEntryAtLevel(Entry{sig, tid}, 0);
  ++size_;
}

void SgTree::NoteTransactionArea(uint32_t area) {
  min_tx_area_ = std::min(min_tx_area_, area);
  max_tx_area_ = std::max(max_tx_area_, area);
}

std::pair<uint32_t, uint32_t> SgTree::TransactionAreaBounds() const {
  if (options_.fixed_dimensionality != 0) {
    return {options_.fixed_dimensionality, options_.fixed_dimensionality};
  }
  if (options_.use_area_stats && min_tx_area_ <= max_tx_area_) {
    return {min_tx_area_, max_tx_area_};
  }
  return {0, options_.num_bits};
}

void SgTree::InsertEntryAtLevel(Entry entry, uint16_t level) {
  if (root_ == kInvalidPageId) {
    SGTREE_ASSERT(level == 0);
    root_ = AllocateNode(0);
    height_ = 1;
  }
  const PageId sibling = InsertRecursive(root_, std::move(entry), level);
  if (sibling == kInvalidPageId) return;

  // Root split: grow the tree by one level.
  const Node& old_root = GetNodeNoCharge(root_);
  const Node& new_sibling = GetNodeNoCharge(sibling);
  const PageId new_root_id =
      AllocateNode(static_cast<uint16_t>(old_root.level + 1));
  Node* new_root = MutableNode(new_root_id);
  new_root->entries.push_back(
      Entry{old_root.UnionSignature(options_.num_bits), root_});
  new_root->entries.push_back(
      Entry{new_sibling.UnionSignature(options_.num_bits), sibling});
  root_ = new_root_id;
  ++height_;
}

PageId SgTree::InsertRecursive(PageId node_id, Entry entry,
                               uint16_t target_level) {
  Node* node = MutableNode(node_id);
  if (node->level == target_level) {
    node->entries.push_back(std::move(entry));
    if (node->Count() > max_entries_) return SplitNode(node_id);
    return kInvalidPageId;
  }

  SGTREE_ASSERT(node->level > target_level);
  const size_t index = ChooseSubtree(*node, entry.sig, options_.choose_policy);
  const auto child_id = static_cast<PageId>(node->entries[index].ref);
  // Enlarge the chosen entry's signature to cover the new one; exact
  // recomputation is unnecessary on insert (signatures only grow).
  node->entries[index].sig.UnionWith(entry.sig);

  const PageId split_child =
      InsertRecursive(child_id, std::move(entry), target_level);
  if (split_child == kInvalidPageId) return kInvalidPageId;

  // The child split: its coverage changed, so recompute the entry signature
  // exactly and add an entry for the new sibling.
  node->entries[index].sig =
      GetNodeNoCharge(child_id).UnionSignature(options_.num_bits);
  node->entries.push_back(
      Entry{GetNodeNoCharge(split_child).UnionSignature(options_.num_bits),
            split_child});
  if (node->Count() > max_entries_) return SplitNode(node_id);
  return kInvalidPageId;
}

PageId SgTree::SplitNode(PageId node_id) {
  Node* node = MutableNode(node_id);
  SplitResult split =
      SplitEntries(std::move(node->entries), options_.split_policy,
                   min_entries_, options_.num_bits);
  node->entries = std::move(split.first);
  const PageId sibling_id = AllocateNode(node->level);
  Node* sibling = MutableNode(sibling_id);
  sibling->entries = std::move(split.second);
  return sibling_id;
}

// ---------------------------------------------------------------------------
// Deletion (R-tree condense, Section 3.1 last paragraph).
// ---------------------------------------------------------------------------

bool SgTree::Erase(const Transaction& txn) {
  return Erase(Signature::FromItems(txn.items, options_.num_bits), txn.tid);
}

bool SgTree::Erase(const Signature& sig, uint64_t tid) {
  if (empty()) return false;
  std::vector<std::pair<Entry, uint16_t>> pending;
  if (EraseRecursive(root_, sig, tid, &pending) == EraseResult::kNotFound) {
    return false;
  }
  --size_;

  // Reinsert orphaned entries, higher levels first so subtree entries are
  // placed while the tree is still tall enough.
  std::stable_sort(pending.begin(), pending.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  for (auto& [entry, level] : pending) {
    InsertEntryAtLevel(std::move(entry), level);
  }
  ShrinkRoot();
  return true;
}

SgTree::EraseResult SgTree::EraseRecursive(
    PageId node_id, const Signature& sig, uint64_t tid,
    std::vector<std::pair<Entry, uint16_t>>* pending) {
  Node* node = MutableNode(node_id);
  if (node->IsLeaf()) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (node->entries[i].ref == tid && node->entries[i].sig == sig) {
        node->entries.erase(node->entries.begin() + i);
        return EraseResult::kRemoved;
      }
    }
    return EraseResult::kNotFound;
  }

  for (size_t i = 0; i < node->entries.size(); ++i) {
    if (!node->entries[i].sig.Contains(sig)) continue;
    const auto child_id = static_cast<PageId>(node->entries[i].ref);
    if (EraseRecursive(child_id, sig, tid, pending) ==
        EraseResult::kNotFound) {
      continue;
    }
    const Node& child = GetNodeNoCharge(child_id);
    // Dissolve an underflowing child unless it is the only child of the
    // root (then the child will simply become the new root).
    const bool can_dissolve = node_id != root_ || node->Count() > 1;
    if (child.Count() < min_entries_ && can_dissolve) {
      const uint16_t child_level = child.level;
      for (const Entry& orphan : child.entries) {
        pending->emplace_back(orphan, child_level);
      }
      FreeNode(child_id);
      node->entries.erase(node->entries.begin() + i);
    } else {
      node->entries[i].sig = child.UnionSignature(options_.num_bits);
    }
    return EraseResult::kRemoved;
  }
  return EraseResult::kNotFound;
}

void SgTree::ShrinkRoot() {
  while (root_ != kInvalidPageId) {
    const Node& root = GetNodeNoCharge(root_);
    if (root.IsLeaf() || root.Count() != 1) break;
    const auto child = static_cast<PageId>(root.entries[0].ref);
    FreeNode(root_);
    root_ = child;
    --height_;
  }
  if (size_ == 0 && root_ != kInvalidPageId) {
    const Node& root = GetNodeNoCharge(root_);
    if (root.IsLeaf() && root.Count() == 0) {
      FreeNode(root_);
      root_ = kInvalidPageId;
      height_ = 0;
    }
  }
}

}  // namespace sgtree
