#include "sgtree/join.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>

#include "common/check.h"

#include "common/distance.h"

namespace sgtree {
namespace {

// Joins traverse two trees at once: per-tree node reads and buffer traffic
// are charged to that tree's own context, while the pair-level counters
// (comparisons, pruning decisions, results) go to one primary sink — the
// first context that has somewhere to put them. When both contexts share
// one stats/trace (the convenience wrappers do), the totals are identical
// to charging everything into it directly.
QueryContext PrimarySink(const QueryContext& ctx_a,
                         const QueryContext& ctx_b) {
  QueryContext primary;
  primary.stats = ctx_a.stats != nullptr ? ctx_a.stats : ctx_b.stats;
  primary.trace = ctx_a.trace != nullptr ? ctx_a.trace : ctx_b.trace;
  return primary;
}

bool PairLess(const JoinPair& x, const JoinPair& y) {
  if (x.distance != y.distance) return x.distance < y.distance;
  if (x.tid_a != y.tid_a) return x.tid_a < y.tid_a;
  return x.tid_b < y.tid_b;
}

// Containment pairs carry their distance in (tid_a, tid_b), so id order is
// the natural canonical order there.
bool IdPairLess(const JoinPair& x, const JoinPair& y) {
  if (x.tid_a != y.tid_a) return x.tid_a < y.tid_a;
  return x.tid_b < y.tid_b;
}

class VectorSink : public JoinSink {
 public:
  explicit VectorSink(std::vector<JoinPair>* out) : out_(out) {}
  bool OnPair(const JoinPair& pair) override {
    out_->push_back(pair);
    return true;
  }

 private:
  std::vector<JoinPair>* out_;
};

}  // namespace

double PairMinDist(const Signature& a, bool leaf_a, const Signature& b,
                   bool leaf_b, Metric metric,
                   uint32_t fixed_dimensionality) {
  if (leaf_a && leaf_b) return Distance(a, b, metric);
  if (leaf_a) return MinDistBound(a, b, metric, fixed_dimensionality);
  if (leaf_b) return MinDistBound(b, a, metric, fixed_dimensionality);

  // Both covering signatures: transactions on either side may be any
  // non-empty subsets, so only the shared-item count c = |a AND b| helps.
  const uint32_t c = Signature::IntersectCount(a, b);
  const uint32_t d = fixed_dimensionality;
  switch (metric) {
    case Metric::kHamming:
      if (d > 0) return 2.0 * (d - std::min(c, d));
      return c == 0 ? 2.0 : 0.0;  // Disjoint non-empty sets differ in >= 2.
    case Metric::kJaccard:
    case Metric::kDice:
    case Metric::kCosine:
      // With |ta| = |tb| = d, all three similarities are at most
      // min(c, d) / d; without fixed sizes, only disjointness prunes.
      if (d > 0) return 1.0 - static_cast<double>(std::min(c, d)) / d;
      return c == 0 ? 1.0 : 0.0;
  }
  return 0.0;
}

namespace {

struct JoinContext {
  const SgTree* tree_a;
  const SgTree* tree_b;
  QueryContext ctx_a;
  QueryContext ctx_b;
  Metric metric;
  uint32_t fixed_dim;
  double epsilon;
  JoinSink* sink;
  QueryContext primary;  // Pair-level counter sink (pool unused).
  bool cancelled = false;
};

void JoinNodes(JoinContext& ctx, PageId id_a, PageId id_b) {
  const Node& na = ctx.tree_a->GetNode(id_a, ctx.ctx_a);
  const Node& nb = ctx.tree_b->GetNode(id_b, ctx.ctx_b);
  ctx.ctx_a.CountNode(na.IsLeaf());
  ctx.ctx_b.CountNode(nb.IsLeaf());

  if (na.IsLeaf() && nb.IsLeaf()) {
    for (const Entry& ea : na.entries) {
      for (const Entry& eb : nb.entries) {
        ctx.primary.CountVerified(1);
        const double d = Distance(ea.sig, eb.sig, ctx.metric);
        if (d <= ctx.epsilon) {
          ctx.primary.TraceResults(1);
          if (!ctx.sink->OnPair({ea.ref, eb.ref, d})) {
            ctx.cancelled = true;
            return;
          }
        } else {
          ctx.primary.TraceFalseDrops(1);
        }
      }
    }
    return;
  }

  if (!na.IsLeaf() && !nb.IsLeaf()) {
    for (const Entry& ea : na.entries) {
      for (const Entry& eb : nb.entries) {
        const double bound = PairMinDist(ea.sig, false, eb.sig, false,
                                         ctx.metric, ctx.fixed_dim);
        ctx.primary.TraceSignatures(1);
        if (bound <= ctx.epsilon) {
          ctx.primary.TraceDescended(1);
          JoinNodes(ctx, static_cast<PageId>(ea.ref),
                    static_cast<PageId>(eb.ref));
          if (ctx.cancelled) return;
        } else {
          ctx.primary.TracePruned(1);
        }
      }
    }
    return;
  }

  // Mixed levels: keep the leaf side fixed, descend the directory side into
  // every child some leaf entry cannot rule out. Several signature pairs
  // feed one decision here, which is why the joins only promise
  // descended + pruned <= signatures_tested.
  const bool a_is_leaf = na.IsLeaf();
  const Node& leaf = a_is_leaf ? na : nb;
  const Node& dir = a_is_leaf ? nb : na;
  for (const Entry& ed : dir.entries) {
    bool needed = false;
    for (const Entry& el : leaf.entries) {
      const double bound = PairMinDist(el.sig, true, ed.sig, false,
                                       ctx.metric, ctx.fixed_dim);
      ctx.primary.TraceSignatures(1);
      if (bound <= ctx.epsilon) {
        needed = true;
        break;
      }
    }
    if (!needed) {
      ctx.primary.TracePruned(1);
      continue;
    }
    ctx.primary.TraceDescended(1);
    if (a_is_leaf) {
      JoinNodes(ctx, id_a, static_cast<PageId>(ed.ref));
    } else {
      JoinNodes(ctx, static_cast<PageId>(ed.ref), id_b);
    }
    if (ctx.cancelled) return;
  }
}

// R ⋈⊆ S traversal. The R (a) side is descended unconditionally — a
// covering signature admits no subset prune, since any subset of it
// (including the empty set) may live below — so the only real pruning
// happens on the S (b) side once the R side reaches a leaf: an S directory
// child whose covering signature does not contain some R leaf signature
// cannot hold a superset of it. Unconditional descents still charge one
// tested signature each so descended + pruned <= signatures_tested holds.
void ContainJoinNodes(JoinContext& ctx, PageId id_a, PageId id_b) {
  const Node& na = ctx.tree_a->GetNode(id_a, ctx.ctx_a);

  if (!na.IsLeaf()) {
    ctx.ctx_a.CountNode(false);
    for (const Entry& ea : na.entries) {
      ctx.primary.TraceSignatures(1);
      ctx.primary.TraceDescended(1);
      ContainJoinNodes(ctx, static_cast<PageId>(ea.ref), id_b);
      if (ctx.cancelled) return;
    }
    return;
  }

  ctx.ctx_a.CountNode(true);
  const Node& nb = ctx.tree_b->GetNode(id_b, ctx.ctx_b);
  ctx.ctx_b.CountNode(nb.IsLeaf());

  if (nb.IsLeaf()) {
    for (const Entry& ea : na.entries) {
      for (const Entry& eb : nb.entries) {
        ctx.primary.CountVerified(1);
        if (eb.sig.Contains(ea.sig)) {
          ctx.primary.TraceResults(1);
          const double gap = Signature::AndNotCount(eb.sig, ea.sig);
          if (!ctx.sink->OnPair({ea.ref, eb.ref, gap})) {
            ctx.cancelled = true;
            return;
          }
        } else {
          ctx.primary.TraceFalseDrops(1);
        }
      }
    }
    return;
  }

  for (const Entry& eb : nb.entries) {
    bool needed = false;
    for (const Entry& ea : na.entries) {
      ctx.primary.TraceSignatures(1);
      if (eb.sig.Contains(ea.sig)) {
        needed = true;
        break;
      }
    }
    if (!needed) {
      ctx.primary.TracePruned(1);
      continue;
    }
    ctx.primary.TraceDescended(1);
    // Re-entering with the same leaf `id_a` re-reads it from the pool; the
    // recursion stays in the leaf × node arm until `eb` bottoms out.
    ContainJoinNodes(ctx, id_a, static_cast<PageId>(eb.ref));
    if (ctx.cancelled) return;
  }
}

}  // namespace

bool SimilarityJoinInto(const SgTree& a, const SgTree& b, double epsilon,
                        const QueryContext& ctx_a, const QueryContext& ctx_b,
                        JoinSink* sink) {
  SGTREE_ASSERT(a.num_bits() == b.num_bits());
  if (a.root() == kInvalidPageId || b.root() == kInvalidPageId) return true;
  const uint32_t fixed_dim = a.options().fixed_dimensionality ==
                                     b.options().fixed_dimensionality
                                 ? a.options().fixed_dimensionality
                                 : 0;
  JoinContext ctx{&a,        &b,      ctx_a, ctx_b, a.options().metric,
                  fixed_dim, epsilon, sink,  PrimarySink(ctx_a, ctx_b)};
  JoinNodes(ctx, a.root(), b.root());
  return !ctx.cancelled;
}

std::vector<JoinPair> SimilarityJoin(const SgTree& a, const SgTree& b,
                                     double epsilon,
                                     const QueryContext& ctx_a,
                                     const QueryContext& ctx_b) {
  std::vector<JoinPair> result;
  VectorSink sink(&result);
  SimilarityJoinInto(a, b, epsilon, ctx_a, ctx_b, &sink);
  std::sort(result.begin(), result.end(), PairLess);
  return result;
}

std::vector<JoinPair> SimilarityJoin(SgTree& a, SgTree& b, double epsilon,
                                     QueryStats* stats) {
  return SimilarityJoin(a, b, epsilon, a.OwnPoolContext(stats),
                        b.OwnPoolContext(stats));
}

bool ContainmentJoinInto(const SgTree& a, const SgTree& b,
                         const QueryContext& ctx_a, const QueryContext& ctx_b,
                         JoinSink* sink) {
  SGTREE_ASSERT(a.num_bits() == b.num_bits());
  if (a.root() == kInvalidPageId || b.root() == kInvalidPageId) return true;
  JoinContext ctx{&a,
                  &b,
                  ctx_a,
                  ctx_b,
                  a.options().metric,
                  0,
                  0.0,
                  sink,
                  PrimarySink(ctx_a, ctx_b)};
  ContainJoinNodes(ctx, a.root(), b.root());
  return !ctx.cancelled;
}

std::vector<JoinPair> ContainmentJoin(const SgTree& a, const SgTree& b,
                                      const QueryContext& ctx_a,
                                      const QueryContext& ctx_b) {
  std::vector<JoinPair> result;
  VectorSink sink(&result);
  ContainmentJoinInto(a, b, ctx_a, ctx_b, &sink);
  std::sort(result.begin(), result.end(), IdPairLess);
  return result;
}

std::vector<JoinPair> ContainmentJoin(SgTree& a, SgTree& b,
                                      QueryStats* stats) {
  return ContainmentJoin(a, b, a.OwnPoolContext(stats),
                         b.OwnPoolContext(stats));
}

std::vector<JoinPair> ClosestPairs(const SgTree& a, const SgTree& b,
                                   uint32_t k, const QueryContext& ctx_a,
                                   const QueryContext& ctx_b) {
  SGTREE_ASSERT(a.num_bits() == b.num_bits());
  std::vector<JoinPair> best;  // Max-heap under PairLess.
  if (a.root() == kInvalidPageId || b.root() == kInvalidPageId || k == 0) {
    return best;
  }
  const QueryContext primary = PrimarySink(ctx_a, ctx_b);
  const Metric metric = a.options().metric;
  const uint32_t fixed_dim = a.options().fixed_dimensionality ==
                                     b.options().fixed_dimensionality
                                 ? a.options().fixed_dimensionality
                                 : 0;

  auto tau = [&]() {
    return best.size() < k ? std::numeric_limits<double>::infinity()
                           : best.front().distance;
  };
  auto offer = [&](const JoinPair& pair) {
    if (best.size() < k) {
      best.push_back(pair);
      std::push_heap(best.begin(), best.end(), PairLess);
    } else if (PairLess(pair, best.front())) {
      std::pop_heap(best.begin(), best.end(), PairLess);
      best.back() = pair;
      std::push_heap(best.begin(), best.end(), PairLess);
    }
  };

  struct QueueItem {
    double bound;
    PageId node_a;
    PageId node_b;
  };
  auto cmp = [](const QueueItem& x, const QueueItem& y) {
    return x.bound > y.bound;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> queue(
      cmp);
  queue.push({0.0, a.root(), b.root()});
  bool at_root = true;  // The root pair is enqueued without a test.

  while (!queue.empty()) {
    const QueueItem item = queue.top();
    queue.pop();
    if (item.bound >= tau()) {
      // This pair and everything still queued was tested but never visited.
      primary.TracePruned(1 + queue.size());
      break;
    }
    if (at_root) {
      at_root = false;
    } else {
      primary.TraceDescended(1);
    }
    const Node& na = a.GetNode(item.node_a, ctx_a);
    const Node& nb = b.GetNode(item.node_b, ctx_b);
    ctx_a.CountNode(na.IsLeaf());
    ctx_b.CountNode(nb.IsLeaf());

    if (na.IsLeaf() && nb.IsLeaf()) {
      primary.CountVerified(na.entries.size() * nb.entries.size());
      for (const Entry& ea : na.entries) {
        for (const Entry& eb : nb.entries) {
          offer({ea.ref, eb.ref, Distance(ea.sig, eb.sig, metric)});
        }
      }
      continue;
    }

    if (!na.IsLeaf() && !nb.IsLeaf()) {
      for (const Entry& ea : na.entries) {
        for (const Entry& eb : nb.entries) {
          const double bound =
              PairMinDist(ea.sig, false, eb.sig, false, metric, fixed_dim);
          primary.TraceSignatures(1);
          if (bound < tau()) {
            queue.push({bound, static_cast<PageId>(ea.ref),
                        static_cast<PageId>(eb.ref)});
          } else {
            primary.TracePruned(1);
          }
        }
      }
      continue;
    }

    const bool a_is_leaf = na.IsLeaf();
    const Node& leaf = a_is_leaf ? na : nb;
    const Node& dir = a_is_leaf ? nb : na;
    for (const Entry& ed : dir.entries) {
      double min_bound = std::numeric_limits<double>::infinity();
      for (const Entry& el : leaf.entries) {
        min_bound = std::min(
            min_bound,
            PairMinDist(el.sig, true, ed.sig, false, metric, fixed_dim));
      }
      primary.TraceSignatures(leaf.entries.size());
      if (min_bound < tau()) {
        if (a_is_leaf) {
          queue.push({min_bound, item.node_a, static_cast<PageId>(ed.ref)});
        } else {
          queue.push({min_bound, static_cast<PageId>(ed.ref), item.node_b});
        }
      } else {
        primary.TracePruned(1);
      }
    }
  }

  std::sort(best.begin(), best.end(), PairLess);
  primary.TraceResults(best.size());
  return best;
}

std::vector<JoinPair> ClosestPairs(SgTree& a, SgTree& b, uint32_t k,
                                   QueryStats* stats) {
  return ClosestPairs(a, b, k, a.OwnPoolContext(stats),
                      b.OwnPoolContext(stats));
}

}  // namespace sgtree

