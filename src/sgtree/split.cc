#include "sgtree/split.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace sgtree {
namespace {

// ---------------------------------------------------------------------------
// Seed-based splits: linear (S-tree-style cheap seeds) and quadratic
// (R-tree max-distance seeds). They share the assignment loop.
// ---------------------------------------------------------------------------

SplitResult SeedSplit(std::vector<Entry> entries, size_t seed1, size_t seed2,
                      uint32_t min_entries);

SplitResult LinearSplit(std::vector<Entry> entries, uint32_t min_entries) {
  const size_t n = entries.size();
  // Linear seed pick: the widest entry, then the entry farthest from it.
  size_t seed1 = 0;
  for (size_t i = 1; i < n; ++i) {
    if (entries[i].sig.Area() > entries[seed1].sig.Area()) seed1 = i;
  }
  size_t seed2 = seed1 == 0 ? 1 : 0;
  uint32_t max_dist = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i == seed1) continue;
    const uint32_t d =
        Signature::XorCount(entries[seed1].sig, entries[i].sig);
    if (d >= max_dist) {
      max_dist = d;
      seed2 = i;
    }
  }
  return SeedSplit(std::move(entries), seed1, seed2, min_entries);
}

SplitResult QuadraticSplit(std::vector<Entry> entries, uint32_t min_entries) {
  const size_t n = entries.size();
  // Seeds: the pair of entries at maximum distance.
  size_t seed1 = 0;
  size_t seed2 = 1;
  uint32_t max_dist = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const uint32_t d = Signature::XorCount(entries[i].sig, entries[j].sig);
      if (d > max_dist) {
        max_dist = d;
        seed1 = i;
        seed2 = j;
      }
    }
  }
  return SeedSplit(std::move(entries), seed1, seed2, min_entries);
}

SplitResult SeedSplit(std::vector<Entry> entries, size_t seed1, size_t seed2,
                      uint32_t min_entries) {
  const size_t n = entries.size();
  SplitResult result;
  Signature sig1 = entries[seed1].sig;
  Signature sig2 = entries[seed2].sig;
  result.first.push_back(std::move(entries[seed1]));
  result.second.push_back(std::move(entries[seed2]));

  std::vector<size_t> rest;
  for (size_t i = 0; i < n; ++i) {
    if (i != seed1 && i != seed2) rest.push_back(i);
  }

  for (size_t r = 0; r < rest.size(); ++r) {
    const size_t remaining = rest.size() - r;
    // Underflow guard: if one group plus all remaining entries only just
    // reaches the minimum, it takes everything.
    if (result.first.size() + remaining == min_entries) {
      for (size_t k = r; k < rest.size(); ++k) {
        sig1.UnionWith(entries[rest[k]].sig);
        result.first.push_back(std::move(entries[rest[k]]));
      }
      break;
    }
    if (result.second.size() + remaining == min_entries) {
      for (size_t k = r; k < rest.size(); ++k) {
        sig2.UnionWith(entries[rest[k]].sig);
        result.second.push_back(std::move(entries[rest[k]]));
      }
      break;
    }

    Entry& entry = entries[rest[r]];
    const uint32_t grow1 = Signature::Enlargement(sig1, entry.sig);
    const uint32_t grow2 = Signature::Enlargement(sig2, entry.sig);
    bool to_first;
    if (grow1 != grow2) {
      to_first = grow1 < grow2;
    } else {
      const uint32_t area1 = sig1.Area();
      const uint32_t area2 = sig2.Area();
      if (area1 != area2) {
        to_first = area1 < area2;
      } else {
        to_first = result.first.size() <= result.second.size();
      }
    }
    if (to_first) {
      sig1.UnionWith(entry.sig);
      result.first.push_back(std::move(entry));
    } else {
      sig2.UnionWith(entry.sig);
      result.second.push_back(std::move(entry));
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Hierarchical clustering splits (AvgSplit / MinSplit).
// ---------------------------------------------------------------------------

struct Cluster {
  std::vector<size_t> members;
  bool active = true;
};

// Runs agglomerative clustering over the entries with the Lance-Williams
// update for either group-average (AvgSplit) or single linkage (MinSplit)
// and assembles the final two groups.
SplitResult ClusteringSplit(std::vector<Entry> entries, bool group_average,
                            uint32_t min_entries, uint32_t num_bits) {
  const size_t n = entries.size();
  // A group may grow to at most n - min_entries, or the other side
  // underflows (the paper's threshold rule).
  const size_t cap = n > min_entries ? n - min_entries : n;

  std::vector<Cluster> clusters(n);
  for (size_t i = 0; i < n; ++i) clusters[i].members = {i};

  // Pairwise distance matrix between clusters (initially entry distances).
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      dist[i][j] = dist[j][i] =
          Signature::XorCount(entries[i].sig, entries[j].sig);
    }
  }

  size_t active_count = n;
  while (active_count > 2) {
    // Best legal merge (merged size within the cap).
    size_t best_a = n;
    size_t best_b = n;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t a = 0; a < n; ++a) {
      if (!clusters[a].active) continue;
      for (size_t b = a + 1; b < n; ++b) {
        if (!clusters[b].active) continue;
        if (clusters[a].members.size() + clusters[b].members.size() > cap) {
          continue;
        }
        if (dist[a][b] < best_dist) {
          best_dist = dist[a][b];
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a == n) break;  // No legal merge left; assemble below.

    const double size_a = static_cast<double>(clusters[best_a].members.size());
    const double size_b = static_cast<double>(clusters[best_b].members.size());
    // Lance-Williams update of the merged cluster's distances.
    for (size_t c = 0; c < n; ++c) {
      if (!clusters[c].active || c == best_a || c == best_b) continue;
      dist[best_a][c] = dist[c][best_a] =
          group_average
              ? (size_a * dist[best_a][c] + size_b * dist[best_b][c]) /
                    (size_a + size_b)
              : std::min(dist[best_a][c], dist[best_b][c]);
    }
    auto& members_a = clusters[best_a].members;
    auto& members_b = clusters[best_b].members;
    members_a.insert(members_a.end(), members_b.begin(), members_b.end());
    members_b.clear();
    clusters[best_b].active = false;
    --active_count;

    // Threshold rule: once a cluster can no longer grow, the others are
    // merged immediately and clustering terminates.
    if (members_a.size() >= cap && active_count > 2) {
      size_t sink = n;
      for (size_t c = 0; c < n; ++c) {
        if (!clusters[c].active || c == best_a) continue;
        if (sink == n) {
          sink = c;
        } else {
          auto& dst = clusters[sink].members;
          dst.insert(dst.end(), clusters[c].members.begin(),
                     clusters[c].members.end());
          clusters[c].members.clear();
          clusters[c].active = false;
          --active_count;
        }
      }
      break;
    }
  }

  // Assemble the two groups. If more than two clusters remain (no legal
  // merge existed), the largest keeps its identity and the rest merge —
  // the paper's termination rule.
  std::vector<size_t> active;
  for (size_t c = 0; c < n; ++c) {
    if (clusters[c].active) active.push_back(c);
  }
  SGTREE_ASSERT(active.size() >= 2);
  std::sort(active.begin(), active.end(), [&](size_t a, size_t b) {
    return clusters[a].members.size() > clusters[b].members.size();
  });
  std::vector<size_t> group1 = clusters[active[0]].members;
  std::vector<size_t> group2;
  for (size_t c = 1; c < active.size(); ++c) {
    group2.insert(group2.end(), clusters[active[c]].members.begin(),
                  clusters[active[c]].members.end());
  }

  // Rare corner: a group may still be under-filled (three stubborn clusters
  // of similar size). Move entries towards the small group by minimum
  // enlargement of its signature until both satisfy the minimum.
  auto union_of = [&](const std::vector<size_t>& group) {
    Signature sig(num_bits);
    for (size_t idx : group) sig.UnionWith(entries[idx].sig);
    return sig;
  };
  auto rebalance = [&](std::vector<size_t>& small, std::vector<size_t>& big) {
    Signature small_sig = union_of(small);
    while (small.size() < min_entries && big.size() > min_entries) {
      size_t best = 0;
      uint32_t best_grow = std::numeric_limits<uint32_t>::max();
      for (size_t i = 0; i < big.size(); ++i) {
        const uint32_t grow =
            Signature::Enlargement(small_sig, entries[big[i]].sig);
        if (grow < best_grow) {
          best_grow = grow;
          best = i;
        }
      }
      small_sig.UnionWith(entries[big[best]].sig);
      small.push_back(big[best]);
      big.erase(big.begin() + best);
    }
  };
  if (group1.size() < group2.size()) {
    rebalance(group1, group2);
  } else {
    rebalance(group2, group1);
  }

  SplitResult result;
  result.first.reserve(group1.size());
  result.second.reserve(group2.size());
  for (size_t idx : group1) result.first.push_back(std::move(entries[idx]));
  for (size_t idx : group2) result.second.push_back(std::move(entries[idx]));
  return result;
}

}  // namespace

SplitResult SplitEntries(std::vector<Entry> entries, SplitPolicy policy,
                         uint32_t min_entries, uint32_t num_bits) {
  SGTREE_ASSERT(entries.size() >= 2);
  switch (policy) {
    case SplitPolicy::kLinear:
      return LinearSplit(std::move(entries), min_entries);
    case SplitPolicy::kQuadratic:
      return QuadraticSplit(std::move(entries), min_entries);
    case SplitPolicy::kAverage:
      return ClusteringSplit(std::move(entries), /*group_average=*/true,
                             min_entries, num_bits);
    case SplitPolicy::kMinimum:
      return ClusteringSplit(std::move(entries), /*group_average=*/false,
                             min_entries, num_bits);
  }
  return QuadraticSplit(std::move(entries), min_entries);
}

}  // namespace sgtree
