#ifndef SGTREE_SGTREE_OPTIONS_H_
#define SGTREE_SGTREE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "common/distance.h"
#include "storage/page.h"

namespace sgtree {

/// Node-split policies (Section 3.1, plus kLinear for the [7] comparison).
enum class SplitPolicy {
  /// Linear-time seed pick (largest entry, then the entry farthest from
  /// it). Models the unoptimized split of Deppisch's S-tree ([7]), which
  /// the paper contrasts with its tuned policies. Fastest, worst quality.
  kLinear,
  /// R-tree quadratic split: seeds are the entry pair at maximum distance,
  /// remaining entries go to the group needing the least area enlargement.
  kQuadratic,
  /// Group-average hierarchical agglomerative clustering down to two
  /// clusters. The paper's pick: best quality at acceptable cost.
  kAverage,
  /// Single-linkage (minimum-spanning-tree) hierarchical clustering.
  kMinimum,
};

/// ChooseSubtree tie-breaking policies (Section 3.1).
enum class ChooseSubtreePolicy {
  /// Minimum area enlargement; ties broken by minimum area. The paper found
  /// this equal in quality to minimum overlap at much lower insertion cost.
  kMinEnlargement,
  /// Minimum overlap-increase with sibling entries; ties by enlargement,
  /// then area.
  kMinOverlap,
};

std::string SplitPolicyName(SplitPolicy policy);
std::string ChooseSubtreePolicyName(ChooseSubtreePolicy policy);

/// Construction-time parameters of an SG-tree.
struct SgTreeOptions {
  /// Signature width = item dictionary size. Required.
  uint32_t num_bits = 0;

  /// Page size the node capacity is derived from.
  uint32_t page_size = kDefaultPageSize;

  /// Maximum entries per node (M). 0 = derive from page_size and the
  /// uncompressed entry size, which matches the paper's "C in the order of
  /// several tens".
  uint32_t max_entries = 0;

  /// Minimum fill m as a fraction of M (the paper requires m <= M/2;
  /// R-tree-standard 40% by default).
  double min_fill_fraction = 0.4;

  SplitPolicy split_policy = SplitPolicy::kAverage;
  ChooseSubtreePolicy choose_policy = ChooseSubtreePolicy::kMinEnlargement;

  /// Sparse-signature compression (Section 3.2) for persisted pages.
  bool compress = true;

  /// Distance metric served by the similarity searches.
  Metric metric = Metric::kHamming;

  /// For categorical data with exactly d values per tuple, set d to enable
  /// the Section 6 tightened lower bound; 0 otherwise.
  uint32_t fixed_dimensionality = 0;

  /// Track the minimum/maximum transaction size seen and use them to
  /// tighten the search bounds (the Section 6 "statistics from the indexed
  /// data" optimization, generalizing fixed dimensionality — on data whose
  /// transactions all have d items the statistic converges to exactly the
  /// fixed-dimensionality bound without being told d).
  bool use_area_stats = true;

  /// LRU buffer-pool frames used for random-I/O accounting.
  uint32_t buffer_pages = 128;

  /// Resolved maximum node capacity.
  uint32_t ResolvedMaxEntries() const;
  /// Resolved minimum node fill (at least 1, at most M/2).
  uint32_t ResolvedMinEntries() const;
};

}  // namespace sgtree

#endif  // SGTREE_SGTREE_OPTIONS_H_
