#ifndef SGTREE_SGTREE_SPLIT_H_
#define SGTREE_SGTREE_SPLIT_H_

#include <utility>
#include <vector>

#include "sgtree/node.h"
#include "sgtree/options.h"

namespace sgtree {

/// Result of splitting an overflowed node: the two entry groups. Both groups
/// are non-empty and contain at least `min_entries` entries whenever the
/// input has at least `2 * min_entries` entries.
struct SplitResult {
  std::vector<Entry> first;
  std::vector<Entry> second;
};

/// Divides `entries` (the M+1 entries of an overflowed node) into two groups
/// according to `policy` (Section 3.1). `min_entries` is the underflow
/// limit m of the resulting nodes; `num_bits` the signature width.
SplitResult SplitEntries(std::vector<Entry> entries, SplitPolicy policy,
                         uint32_t min_entries, uint32_t num_bits);

}  // namespace sgtree

#endif  // SGTREE_SGTREE_SPLIT_H_
