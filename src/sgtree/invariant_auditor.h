#ifndef SGTREE_SGTREE_INVARIANT_AUDITOR_H_
#define SGTREE_SGTREE_INVARIANT_AUDITOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sgtree/paged_reader.h"
#include "sgtree/sg_tree.h"

namespace sgtree {

/// Deep structural verification of an SG-tree, in both its in-memory form
/// and its serialized page image. Unlike the original tree checker (which
/// stopped at the first broken invariant), the auditor keeps walking and
/// reports every violation it finds, each tagged with a machine-readable
/// check id and a human-readable diagnostic naming the offending page —
/// the difference between "tree is broken" and "page 17, entry 3 lost bit
/// 412 of its signature".
///
/// Verified invariants:
///   - coverage (Definition 5): every directory entry's signature is exactly
///     the OR of its child node's entry signatures;
///   - height balance: child level == parent level - 1, all leaves at level
///     0, recorded height matches the root level;
///   - fill-factor bounds: non-root nodes hold between m and M entries, a
///     directory root at least 2;
///   - signature width: every entry matches the tree-wide width;
///   - leaf tid uniqueness: no transaction id is indexed twice;
///   - referential integrity: every entry reference resolves to a live
///     page, every live page is reached exactly once from the root, and
///     (paged form) every page image decodes cleanly with no trailing
///     bytes and within the page size;
///   - bookkeeping: recorded size / height / node count match the walk.
enum class AuditCheck {
  kStructure,        // bookkeeping mismatch (size/height/count, cycles)
  kCoverage,         // directory signature != OR of child entries
  kLevel,            // child level != parent level - 1
  kFill,             // under minimum fill / over capacity / root fill
  kSignatureWidth,   // entry signature width != tree signature width
  kDuplicateTid,     // transaction id indexed by two leaf entries
  kUnreachablePage,  // live page never reached from the root (orphan)
  kDanglingRef,      // entry referencing a freed or unknown page
  kPageDecode,       // page image fails to decode, or trailing bytes
};

/// Stable name for an AuditCheck ("coverage", "fill", ...), used by the CLI
/// and test diagnostics.
std::string_view AuditCheckName(AuditCheck check);

struct AuditViolation {
  AuditCheck check;
  /// Offending page (kInvalidPageId for tree-level bookkeeping violations).
  PageId page = kInvalidPageId;
  std::string detail;

  /// "coverage @page 17: ..." — the one-line form.
  std::string ToString() const;
};

/// Traversal statistics, gathered even when violations are found. The
/// per-level average entry area is the Table 1 split-quality metric.
struct AuditStats {
  uint32_t height = 0;
  uint64_t node_count = 0;
  uint64_t leaf_entries = 0;
  /// Average entry area per level; index 0 = leaf level.
  std::vector<double> avg_entry_area;
  /// Average node fill (entries / capacity) over all non-root nodes.
  double avg_utilization = 0;
  /// Smallest non-root fill fraction seen (1.0 for a root-only tree).
  double min_fill = 1.0;
};

struct AuditOptions {
  /// Recording stops after this many violations (the walk continues, and
  /// `total_violations` keeps counting).
  size_t max_violations = 64;
  bool check_tid_uniqueness = true;
};

struct AuditReport {
  std::vector<AuditViolation> violations;
  /// Total found, including any dropped past AuditOptions::max_violations.
  size_t total_violations = 0;
  AuditStats stats;

  bool ok() const { return total_violations == 0; }
  bool Has(AuditCheck check) const;
  /// First violation as a one-line string, or "" when ok.
  std::string FirstMessage() const;
  /// Multi-line report: one line per violation plus a stats footer.
  std::string Summary() const;
};

/// Audits the in-memory tree. Read-only and side-effect free: node access
/// bypasses the buffer pool, so I/O counters are untouched.
AuditReport AuditTree(const SgTree& tree, const AuditOptions& options = {});

/// Audits a serialized page image (the disk-resident deployment form):
/// decodes every page independently of PagedReader and re-derives the same
/// invariants from raw bytes, plus page-level integrity (decode success, no
/// trailing bytes, orphaned live pages, dangling references).
AuditReport AuditPagedImage(const PagedTreeImage& image,
                            const AuditOptions& options = {});

}  // namespace sgtree

#endif  // SGTREE_SGTREE_INVARIANT_AUDITOR_H_
