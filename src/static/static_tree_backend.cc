#include "static/static_tree_backend.h"

namespace sgtree {

void StaticTreeBackend::Run(const QueryRequest& request,
                            const QueryContext& ctx,
                            QueryResult* result) const {
  switch (request.type) {
    case QueryType::kKnn:
      result->neighbors =
          DfsKNearestCore(*view_, request.query, request.k, ctx,
                          shared_bound_);
      break;
    case QueryType::kBestFirstKnn:
      result->neighbors = BestFirstKNearestCore(*view_, request.query,
                                                request.k, ctx, shared_bound_);
      break;
    case QueryType::kRange:
      result->neighbors =
          RangeSearchCore(*view_, request.query, request.epsilon, ctx);
      break;
    case QueryType::kContainment:
      result->ids = ContainmentSearchCore(*view_, request.query, ctx);
      break;
    case QueryType::kExact:
      result->ids = ExactSearchCore(*view_, request.query, ctx);
      break;
    case QueryType::kSubset:
      result->ids = SubsetSearchCore(*view_, request.query, ctx);
      break;
  }
}

}  // namespace sgtree
