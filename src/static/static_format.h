#ifndef SGTREE_STATIC_STATIC_FORMAT_H_
#define SGTREE_STATIC_STATIC_FORMAT_H_

#include <bit>
#include <cstddef>
#include <cstdint>

namespace sgtree {
namespace static_format {

/// On-disk layout of the immutable static SG-tree image (version 1).
///
/// All integers are little-endian with explicit widths. Every structure is
/// 8-byte aligned so a mapped image can be read through aligned uint64_t
/// pointers (the zero-copy contract of Env::FileMapping).
///
///   offset  size  field
///   ------  ----  -----------------------------------------------------
///        0     8  magic "SGSTATIC"
///        8     4  u32 version            (= 1)
///       12     4  u32 flags              (bit 0 reserved for the §3.2
///                                         sparse encoding; v1 writes 0 and
///                                         stores dense signatures)
///       16     4  u32 num_bits           signature width W in bits
///       20     4  u32 max_entries        node capacity M (<= 65535)
///       24     4  u32 height             0 for an empty tree
///       28     4  u32 root               node index, 0xffffffff = empty
///       32     8  u64 size               indexed transactions
///       40     8  u64 node_count
///       48     8  u64 index_offset       (= 88)
///       56     8  u64 nodes_offset       (= 88 + node_count * 8)
///       64     8  u64 file_size
///       72     4  u32 area_lo            resolved transaction-area window
///       76     4  u32 area_hi            (see SgTree::TransactionAreaBounds)
///       80     4  u32 body_crc32         CRC-32C of bytes [88, file_size)
///       84     4  u32 header_crc32       CRC-32C of bytes [0, 84)
///
/// The node index at `index_offset` is node_count u64 absolute file offsets,
/// one per node, in BFS order from the root (the root is node 0; every
/// child's index is strictly greater than its parent's, so reachability
/// implies acyclicity). Each node record at its offset is:
///
///   u16 level (0 = leaf), u16 count, u32 reserved (0),
///   then count entries of: u64 ref, then ceil(W/64) u64 signature words.
///
/// Directory entries' `ref` is the child's node index; leaf entries' `ref`
/// is the transaction id. Node indexes double as the PageIds the search
/// layer charges to the buffer pool, preserving the dynamic tree's LRU
/// hit/miss pattern node for node.
inline constexpr char kMagic[8] = {'S', 'G', 'S', 'T', 'A', 'T', 'I', 'C'};
inline constexpr uint32_t kVersion = 1;
inline constexpr size_t kHeaderSize = 88;

// Header field offsets; exported so the format-conformance tests can patch
// individual fields without duplicating the layout.
inline constexpr size_t kMagicOffset = 0;
inline constexpr size_t kVersionOffset = 8;
inline constexpr size_t kFlagsOffset = 12;
inline constexpr size_t kNumBitsOffset = 16;
inline constexpr size_t kMaxEntriesOffset = 20;
inline constexpr size_t kHeightOffset = 24;
inline constexpr size_t kRootOffset = 28;
inline constexpr size_t kSizeOffset = 32;
inline constexpr size_t kNodeCountOffset = 40;
inline constexpr size_t kIndexOffsetOffset = 48;
inline constexpr size_t kNodesOffsetOffset = 56;
inline constexpr size_t kFileSizeOffset = 64;
inline constexpr size_t kAreaLoOffset = 72;
inline constexpr size_t kAreaHiOffset = 76;
inline constexpr size_t kBodyCrcOffset = 80;
inline constexpr size_t kHeaderCrcOffset = 84;

inline constexpr uint32_t kInvalidRoot = 0xffffffffu;
inline constexpr uint32_t kFlagSparse = 1u << 0;  // Reserved, never set.

/// Caps that keep hostile headers from overflowing size arithmetic: widths
/// beyond 2^24 bits would overflow WordsForBits' uint32 math, and a node's
/// count field is 16 bits wide.
inline constexpr uint32_t kMaxNumBits = 1u << 24;
inline constexpr uint32_t kMaxNodeEntries = 65535;

/// Bytes of one node record holding `count` entries of `words` sig words.
inline constexpr uint64_t NodeRecordBytes(uint64_t count, uint64_t words) {
  return 8 + count * (8 + words * 8);
}

// Little-endian field accessors. Stores compose bytes explicitly so builder
// output is byte-stable on any host; the zero-copy read path additionally
// reinterprets signature words in place, which is only correct on a
// little-endian host — enforced at compile time.
static_assert(std::endian::native == std::endian::little,
              "the static SG-tree image is little-endian and the zero-copy "
              "reader assumes a little-endian host");

inline void StoreU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

inline void StoreU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline void StoreU64(uint8_t* p, uint64_t v) {
  StoreU32(p, static_cast<uint32_t>(v));
  StoreU32(p + 4, static_cast<uint32_t>(v >> 32));
}

inline uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(uint32_t{p[0]} | (uint32_t{p[1]} << 8));
}

inline uint32_t LoadU32(const uint8_t* p) {
  return uint32_t{p[0]} | (uint32_t{p[1]} << 8) | (uint32_t{p[2]} << 16) |
         (uint32_t{p[3]} << 24);
}

inline uint64_t LoadU64(const uint8_t* p) {
  return uint64_t{LoadU32(p)} | (uint64_t{LoadU32(p + 4)} << 32);
}

}  // namespace static_format
}  // namespace sgtree

#endif  // SGTREE_STATIC_STATIC_FORMAT_H_
