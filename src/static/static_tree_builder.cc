#include "static/static_tree_builder.h"

#include <cstring>
#include <deque>
#include <unordered_map>

#include "common/bit_ops.h"
#include "common/crc32.h"
#include "common/file_util.h"
#include "sgtree/node.h"
#include "static/static_format.h"
#include "storage/page.h"

namespace sgtree {

namespace {

namespace sf = static_format;

bool BuildFail(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

}  // namespace

bool BuildStaticImage(const SgTree& tree, std::vector<uint8_t>* out,
                      std::string* error) {
  const uint32_t num_bits = tree.num_bits();
  const uint32_t max_entries = tree.max_entries();
  const uint64_t words = WordsForBits(num_bits);
  if (max_entries > sf::kMaxNodeEntries) {
    return BuildFail(error,
                     "node capacity " + std::to_string(max_entries) +
                         " exceeds the static format's 16-bit entry count");
  }

  // BFS from the root fixes the node order (root = node 0, children always
  // after parents) and the node-index <-> PageId bijection the search layer
  // charges through.
  std::vector<PageId> order;
  std::unordered_map<PageId, uint64_t> index_of;
  if (tree.root() != kInvalidPageId) {
    std::deque<PageId> queue{tree.root()};
    index_of[tree.root()] = 0;
    while (!queue.empty()) {
      const PageId id = queue.front();
      queue.pop_front();
      order.push_back(id);
      const Node& node = tree.GetNodeNoCharge(id);
      if (node.IsLeaf()) continue;
      for (size_t i = 0; i < node.Count(); ++i) {
        const PageId child = static_cast<PageId>(node.EntryAt(i).ref);
        index_of[child] = static_cast<uint64_t>(index_of.size());
        queue.push_back(child);
      }
    }
  }

  const uint64_t node_count = order.size();
  const uint64_t nodes_offset = sf::kHeaderSize + node_count * 8;
  uint64_t file_size = nodes_offset;
  for (const PageId id : order) {
    file_size += sf::NodeRecordBytes(tree.GetNodeNoCharge(id).Count(), words);
  }

  out->assign(file_size, 0);
  uint8_t* base = out->data();

  // Node index + records.
  uint64_t offset = nodes_offset;
  for (uint64_t i = 0; i < node_count; ++i) {
    const Node& node = tree.GetNodeNoCharge(order[i]);
    sf::StoreU64(base + sf::kHeaderSize + i * 8, offset);
    uint8_t* rec = base + offset;
    sf::StoreU16(rec, node.level);
    sf::StoreU16(rec + 2, static_cast<uint16_t>(node.Count()));
    // Bytes 4..7 stay zero (reserved).
    uint8_t* cursor = rec + 8;
    for (size_t e = 0; e < node.Count(); ++e) {
      const Entry& entry = node.EntryAt(e);
      if (entry.sig.num_bits() != num_bits) {
        return BuildFail(error, "entry signature width mismatch in tree");
      }
      const uint64_t ref = node.IsLeaf()
                               ? entry.ref
                               : index_of.at(static_cast<PageId>(entry.ref));
      sf::StoreU64(cursor, ref);
      cursor += 8;
      const std::span<const uint64_t> sig_words = entry.sig.words();
      for (uint64_t w = 0; w < words; ++w) {
        sf::StoreU64(cursor, sig_words[w]);
        cursor += 8;
      }
    }
    offset += sf::NodeRecordBytes(node.Count(), words);
  }

  // Header, then its two checksums (body first: the header CRC covers the
  // stored body CRC).
  const auto [area_lo, area_hi] = tree.TransactionAreaBounds();
  std::memcpy(base + sf::kMagicOffset, sf::kMagic, sizeof(sf::kMagic));
  sf::StoreU32(base + sf::kVersionOffset, sf::kVersion);
  sf::StoreU32(base + sf::kFlagsOffset, 0);
  sf::StoreU32(base + sf::kNumBitsOffset, num_bits);
  sf::StoreU32(base + sf::kMaxEntriesOffset, max_entries);
  sf::StoreU32(base + sf::kHeightOffset,
               node_count == 0 ? 0 : tree.height());
  sf::StoreU32(base + sf::kRootOffset,
               node_count == 0 ? sf::kInvalidRoot : 0);
  sf::StoreU64(base + sf::kSizeOffset, tree.size());
  sf::StoreU64(base + sf::kNodeCountOffset, node_count);
  sf::StoreU64(base + sf::kIndexOffsetOffset, sf::kHeaderSize);
  sf::StoreU64(base + sf::kNodesOffsetOffset, nodes_offset);
  sf::StoreU64(base + sf::kFileSizeOffset, file_size);
  sf::StoreU32(base + sf::kAreaLoOffset, area_lo);
  sf::StoreU32(base + sf::kAreaHiOffset, area_hi);
  sf::StoreU32(base + sf::kBodyCrcOffset,
               Crc32c(base + sf::kHeaderSize, file_size - sf::kHeaderSize));
  sf::StoreU32(base + sf::kHeaderCrcOffset,
               Crc32c(base, sf::kHeaderCrcOffset));
  if (error != nullptr) error->clear();
  return true;
}

bool BuildStaticTree(const SgTree& tree, const std::string& path,
                     std::string* error) {
  std::vector<uint8_t> image;
  if (!BuildStaticImage(tree, &image, error)) return false;
  return AtomicWriteFile(path, image, error);
}

bool ExportStatic(const DurableTree& durable, const std::string& path,
                  std::string* error) {
  return durable.WithFrozenTree([&](const SgTree& tree) {
    return BuildStaticTree(tree, path, error);
  });
}

}  // namespace sgtree
