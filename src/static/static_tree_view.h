#ifndef SGTREE_STATIC_STATIC_TREE_VIEW_H_
#define SGTREE_STATIC_STATIC_TREE_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bit_ops.h"
#include "common/signature.h"
#include "durability/env.h"
#include "sgtree/options.h"
#include "static/static_format.h"
#include "storage/page.h"
#include "storage/query_context.h"

namespace sgtree {

/// One entry of a static node, viewed in place: the signature words are
/// read straight out of the image (zero copy), `ref` is the child node
/// index (directory) or transaction id (leaf).
struct StaticEntry {
  SignatureView sig;
  uint64_t ref = 0;
};

/// A node of the static image, viewed in place. Exposes the same
/// `IsLeaf()` / `Count()` / `EntryAt(i)` surface as the dynamic Node, so
/// the templated search cores (sgtree/search_core.h) traverse either
/// representation through one spelling. Cheap to copy (pointer + width).
class StaticNodeView {
 public:
  StaticNodeView(const uint64_t* record, uint32_t num_bits)
      : record_(record), num_bits_(num_bits) {}

  uint16_t level() const {
    return static_cast<uint16_t>(record_[0] & 0xffff);
  }
  bool IsLeaf() const { return level() == 0; }
  uint32_t Count() const {
    return static_cast<uint32_t>((record_[0] >> 16) & 0xffff);
  }

  StaticEntry EntryAt(size_t i) const {
    const size_t stride = 1 + WordsForBits(num_bits_);
    const uint64_t* entry = record_ + 1 + i * stride;
    return {SignatureView(num_bits_, entry + 1), entry[0]};
  }

 private:
  const uint64_t* record_;  // Aligned start of the node record.
  uint32_t num_bits_;
};

struct StaticOpenOptions {
  /// Runtime tree options (metric, area-stats switches, buffer pages...).
  /// num_bits 0 adopts the file's width; a non-zero width must match it.
  /// max_entries is always adopted from the file, like LoadTree.
  SgTreeOptions tree;

  /// Verify the body CRC over the whole image at open. Structural
  /// validation (offsets, levels, reachability) always runs regardless, so
  /// an opened view can never index out of bounds — disabling this only
  /// skips the whole-file checksum pass for faster cold starts.
  bool verify_checksums = true;
};

/// Read-only, zero-copy view of a static SG-tree image (static_format.h).
///
/// Open() maps the file through Env::MapReadOnly — a true mmap under the
/// POSIX env, a read-into-aligned-buffer fallback under wrapping envs — and
/// validates the image before the first query can touch it. The view
/// implements the read surface of SgTree (root / GetNode / options /
/// TransactionAreaBounds), so the templated search cores run against it
/// unchanged, and node indexes double as PageIds: charging them to a
/// query's buffer pool reproduces the dynamic tree's LRU behavior exactly.
///
/// A fully validated view is immutable and safe to share across any number
/// of concurrent query threads without synchronization.
class StaticTreeView {
 public:
  /// Opens and validates `path`. Returns nullptr with `*error` set (when
  /// non-null) to "path: reason" on failure.
  static std::unique_ptr<StaticTreeView> Open(Env* env,
                                              const std::string& path,
                                              const StaticOpenOptions& options,
                                              std::string* error);

  /// Validates an in-memory image, copying it into an owned aligned buffer.
  /// Error reasons are bare (no path prefix). Used by tests and the fuzz
  /// harness.
  static std::unique_ptr<StaticTreeView> OpenFromBytes(
      const uint8_t* data, size_t size, const StaticOpenOptions& options,
      std::string* error);

  PageId root() const {
    return root_ == static_format::kInvalidRoot ? kInvalidPageId
                                                : static_cast<PageId>(root_);
  }

  StaticNodeView GetNode(PageId id, const QueryContext& ctx) const {
    ctx.ChargeRead(id);
    return GetNodeNoCharge(id);
  }

  StaticNodeView GetNodeNoCharge(PageId id) const {
    return {reinterpret_cast<const uint64_t*>(data_ + index_[id]),
            num_bits_};
  }

  const SgTreeOptions& options() const { return options_; }

  /// Same resolution the dynamic tree applies (fixed dimensionality, then
  /// the stored area window under use_area_stats, then the generic bound).
  std::pair<uint32_t, uint32_t> TransactionAreaBounds() const;

  uint32_t num_bits() const { return num_bits_; }
  uint32_t max_entries() const { return max_entries_; }
  uint32_t height() const { return height_; }
  uint64_t size() const { return size_; }
  uint64_t node_count() const { return node_count_; }
  uint64_t file_size() const { return file_size_; }

  /// True when the bytes are served from an actual memory mapping rather
  /// than a private buffer.
  bool zero_copy() const {
    return mapping_ != nullptr && mapping_->zero_copy();
  }

 private:
  StaticTreeView() = default;

  /// Parses + validates the image and fills the member fields; `data` must
  /// be 8-byte aligned. Returns false with a bare one-line reason.
  bool Init(const uint8_t* data, size_t size, const StaticOpenOptions& options,
            std::string* error);

  std::unique_ptr<FileMapping> mapping_;  // Open() path.
  std::vector<uint64_t> owned_words_;     // OpenFromBytes() path.
  const uint8_t* data_ = nullptr;
  size_t data_size_ = 0;
  const uint64_t* index_ = nullptr;  // node_count_ file offsets.

  SgTreeOptions options_;
  uint32_t num_bits_ = 0;
  uint32_t max_entries_ = 0;
  uint32_t height_ = 0;
  uint32_t root_ = static_format::kInvalidRoot;
  uint64_t size_ = 0;
  uint64_t node_count_ = 0;
  uint64_t file_size_ = 0;
  uint32_t area_lo_ = 0;
  uint32_t area_hi_ = 0;
};

}  // namespace sgtree

#endif  // SGTREE_STATIC_STATIC_TREE_VIEW_H_
