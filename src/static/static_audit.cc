#include "static/static_audit.h"

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bit_ops.h"
#include "common/signature.h"

namespace sgtree {
namespace {

/// Walk state; mirrors the recording/statistics half of the dynamic
/// Auditor (invariant_auditor.cc) for the static node representation.
struct StaticAuditor {
  explicit StaticAuditor(const StaticTreeView& v, const AuditOptions& opts)
      : view(v),
        options(opts),
        num_bits(v.num_bits()),
        max_entries(v.max_entries()),
        min_entries(v.options().ResolvedMinEntries()) {}

  const StaticTreeView& view;
  AuditOptions options;
  AuditReport report;
  std::unordered_map<uint64_t, PageId> tid_owner;  // tid -> first leaf node
  std::vector<uint64_t> area_sum;     // Per level.
  std::vector<uint64_t> entry_count;  // Per level.
  uint64_t non_root_nodes = 0;
  uint64_t non_root_entries = 0;

  const uint32_t num_bits;
  const uint32_t max_entries;
  const uint32_t min_entries;

  void Violate(AuditCheck check, PageId page, std::string detail) {
    ++report.total_violations;
    if (report.violations.size() < options.max_violations) {
      report.violations.push_back({check, page, std::move(detail)});
    }
  }

  /// Checks one node and returns the OR of its entry signatures (the value
  /// the parent entry must carry).
  Signature Visit(PageId id, bool is_root) {
    const StaticNodeView node = view.GetNodeNoCharge(id);
    ++report.stats.node_count;
    const uint32_t level = node.level();
    if (area_sum.size() <= level) {
      area_sum.resize(level + 1, 0);
      entry_count.resize(level + 1, 0);
    }

    if (node.Count() > max_entries) {
      Violate(AuditCheck::kFill, id,
              "node has " + std::to_string(node.Count()) +
                  " entries, above capacity " + std::to_string(max_entries));
    }
    if (is_root) {
      if (!node.IsLeaf() && node.Count() < 2) {
        Violate(AuditCheck::kFill, id,
                "directory root has fewer than 2 entries");
      }
    } else {
      if (min_entries > 0 && node.Count() < min_entries) {
        Violate(AuditCheck::kFill, id,
                "node has " + std::to_string(node.Count()) +
                    " entries, below minimum fill " +
                    std::to_string(min_entries));
      }
      ++non_root_nodes;
      non_root_entries += node.Count();
      if (max_entries > 0) {
        const double fill = static_cast<double>(node.Count()) /
                            static_cast<double>(max_entries);
        if (fill < report.stats.min_fill) report.stats.min_fill = fill;
      }
    }

    Signature union_sig(num_bits);
    const uint64_t tail = TailMask(num_bits);
    const uint32_t words = WordsForBits(num_bits);
    for (size_t i = 0; i < node.Count(); ++i) {
      const StaticEntry entry = node.EntryAt(i);
      // The dense encoding stores whole words; bits past num_bits in the
      // last word must be zero or word-level set operations would observe
      // phantom items.
      if (words > 0 && (entry.sig.words()[words - 1] & ~tail) != 0) {
        Violate(AuditCheck::kSignatureWidth, id,
                "entry " + std::to_string(i) +
                    " has bits set beyond the signature width");
      }
      area_sum[level] += sig::Area(entry.sig);
      ++entry_count[level];
      for (uint32_t w = 0; w < words; ++w) {
        union_sig.mutable_words()[w] |= entry.sig.words()[w];
      }
      if (node.IsLeaf()) {
        ++report.stats.leaf_entries;
        if (options.check_tid_uniqueness) {
          const auto [it, inserted] = tid_owner.emplace(entry.ref, id);
          if (!inserted) {
            Violate(AuditCheck::kDuplicateTid, id,
                    "tid " + std::to_string(entry.ref) +
                        " already indexed by node " +
                        std::to_string(it->second));
          }
        }
        continue;
      }

      // Recurse, then compare the entry signature against the child union
      // (coverage, Definition 5). The open-time validation already proved
      // levels and acyclicity, so the walk needs no cycle guard.
      const Signature child_union =
          Visit(static_cast<PageId>(entry.ref), /*is_root=*/false);
      bool equal = true;
      for (uint32_t w = 0; w < words; ++w) {
        if (entry.sig.words()[w] != child_union.words()[w]) {
          equal = false;
          break;
        }
      }
      if (!equal) {
        std::string diff;
        for (uint32_t pos = 0; pos < num_bits; ++pos) {
          if (entry.sig.Test(pos) != child_union.Test(pos)) {
            diff = child_union.Test(pos)
                       ? " (lost bit " + std::to_string(pos) +
                             " of the child union)"
                       : " (excess bit " + std::to_string(pos) +
                             " not in the child union)";
            break;
          }
        }
        Violate(AuditCheck::kCoverage, id,
                "entry " + std::to_string(i) +
                    " signature is not the OR of child node " +
                    std::to_string(entry.ref) + "'s entries" + diff);
      }
    }
    return union_sig;
  }

  void Finalize() {
    report.stats.height = view.height();
    report.stats.avg_entry_area.assign(area_sum.size(), 0.0);
    for (size_t level = 0; level < area_sum.size(); ++level) {
      if (entry_count[level] > 0) {
        report.stats.avg_entry_area[level] =
            static_cast<double>(area_sum[level]) /
            static_cast<double>(entry_count[level]);
      }
    }
    if (non_root_nodes > 0 && max_entries > 0) {
      report.stats.avg_utilization =
          static_cast<double>(non_root_entries) /
          (static_cast<double>(non_root_nodes) *
           static_cast<double>(max_entries));
    }
    if (report.stats.leaf_entries != view.size()) {
      Violate(AuditCheck::kStructure, kInvalidPageId,
              "header says " + std::to_string(view.size()) +
                  " transactions, leaves hold " +
                  std::to_string(report.stats.leaf_entries));
    }
    if (report.stats.node_count != view.node_count()) {
      Violate(AuditCheck::kStructure, kInvalidPageId,
              "header says " + std::to_string(view.node_count()) +
                  " nodes, walk visited " +
                  std::to_string(report.stats.node_count));
    }
  }
};

}  // namespace

AuditReport AuditStaticImage(const StaticTreeView& view,
                             const AuditOptions& options) {
  StaticAuditor auditor(view, options);
  if (view.root() != kInvalidPageId) {
    auditor.Visit(view.root(), /*is_root=*/true);
  }
  auditor.Finalize();
  return auditor.report;
}

}  // namespace sgtree
