#ifndef SGTREE_STATIC_STATIC_AUDIT_H_
#define SGTREE_STATIC_STATIC_AUDIT_H_

#include "sgtree/invariant_auditor.h"
#include "static/static_tree_view.h"

namespace sgtree {

/// Audits a validated static SG-tree image against the same semantic
/// invariants AuditTree verifies on the dynamic tree — coverage (every
/// directory signature is exactly the OR of its child's entries), fill
/// bounds, leaf tid uniqueness, plus the static format's own hygiene rule
/// that no signature word carries bits beyond the declared width. Pure
/// structure (offsets, levels, reachability, bookkeeping counts) is already
/// enforced by StaticTreeView validation at open, so a view that exists has
/// passed it; opening with verify_checksums=false is how a deliberately
/// corrupted-but-structurally-sound image reaches this audit in tests and
/// `sgtree_cli check --static`.
///
/// Violations reuse the AuditCheck/AuditReport vocabulary; `page` is the
/// node index within the image.
AuditReport AuditStaticImage(const StaticTreeView& view,
                             const AuditOptions& options = {});

}  // namespace sgtree

#endif  // SGTREE_STATIC_STATIC_AUDIT_H_
