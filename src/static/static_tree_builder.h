#ifndef SGTREE_STATIC_STATIC_TREE_BUILDER_H_
#define SGTREE_STATIC_STATIC_TREE_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "durability/durable_tree.h"
#include "sgtree/sg_tree.h"

namespace sgtree {

/// Serializes `tree` into a static SG-tree image (static_format.h) in
/// `*out`. Nodes are laid out in BFS order from the root, which makes the
/// output a pure function of the tree's logical content — byte-stable
/// across runs, hosts, and heap layouts (the golden-file tests depend on
/// this). Returns false with `*error` set (when non-null) on failure (node
/// capacity beyond the format's 16-bit entry count).
bool BuildStaticImage(const SgTree& tree, std::vector<uint8_t>* out,
                      std::string* error = nullptr);

/// BuildStaticImage + crash-atomic publication: the image is written to a
/// sibling temp file, fsynced, renamed over `path`, and the directory entry
/// fsynced (AtomicWriteFile) — the same publish discipline as SaveTree.
bool BuildStaticTree(const SgTree& tree, const std::string& path,
                     std::string* error = nullptr);

/// Exports a live durable index as a static image at `path`, holding the
/// write path locked for the duration so the image is an
/// operation-consistent snapshot. Lives here (not in src/durability) so the
/// durability layer does not depend on the static format.
bool ExportStatic(const DurableTree& durable, const std::string& path,
                  std::string* error = nullptr);

}  // namespace sgtree

#endif  // SGTREE_STATIC_STATIC_TREE_BUILDER_H_
