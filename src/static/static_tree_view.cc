#include "static/static_tree_view.h"

#include <cstring>

#include "common/crc32.h"

namespace sgtree {

namespace {

namespace sf = static_format;

bool Fail(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = reason;
  return false;
}

}  // namespace

std::pair<uint32_t, uint32_t> StaticTreeView::TransactionAreaBounds() const {
  if (options_.fixed_dimensionality != 0) {
    return {options_.fixed_dimensionality, options_.fixed_dimensionality};
  }
  if (options_.use_area_stats && area_lo_ <= area_hi_ &&
      area_hi_ <= num_bits_ && size_ > 0) {
    return {area_lo_, area_hi_};
  }
  return {0, num_bits_};
}

bool StaticTreeView::Init(const uint8_t* data, size_t size,
                          const StaticOpenOptions& options,
                          std::string* error) {
  if (size < sf::kHeaderSize) {
    return Fail(error, "truncated file (no header)");
  }
  if (std::memcmp(data + sf::kMagicOffset, sf::kMagic, sizeof(sf::kMagic)) !=
      0) {
    return Fail(error, "not a static SG-tree (bad magic)");
  }
  const uint32_t header_crc = sf::LoadU32(data + sf::kHeaderCrcOffset);
  if (Crc32c(data, sf::kHeaderCrcOffset) != header_crc) {
    return Fail(error, "header checksum mismatch");
  }
  const uint32_t version = sf::LoadU32(data + sf::kVersionOffset);
  if (version != sf::kVersion) {
    return Fail(error, "unsupported static format version " +
                           std::to_string(version));
  }
  const uint32_t flags = sf::LoadU32(data + sf::kFlagsOffset);
  if (flags != 0) {
    return Fail(error, "unsupported format flags");
  }

  num_bits_ = sf::LoadU32(data + sf::kNumBitsOffset);
  max_entries_ = sf::LoadU32(data + sf::kMaxEntriesOffset);
  height_ = sf::LoadU32(data + sf::kHeightOffset);
  root_ = sf::LoadU32(data + sf::kRootOffset);
  size_ = sf::LoadU64(data + sf::kSizeOffset);
  node_count_ = sf::LoadU64(data + sf::kNodeCountOffset);
  const uint64_t index_offset = sf::LoadU64(data + sf::kIndexOffsetOffset);
  const uint64_t nodes_offset = sf::LoadU64(data + sf::kNodesOffsetOffset);
  file_size_ = sf::LoadU64(data + sf::kFileSizeOffset);
  area_lo_ = sf::LoadU32(data + sf::kAreaLoOffset);
  area_hi_ = sf::LoadU32(data + sf::kAreaHiOffset);

  if (file_size_ != size) {
    return Fail(error, "file size mismatch (header says " +
                           std::to_string(file_size_) + ", file has " +
                           std::to_string(size) + " bytes)");
  }
  if (num_bits_ == 0 || num_bits_ > sf::kMaxNumBits) {
    return Fail(error, "invalid signature width " +
                           std::to_string(num_bits_));
  }
  if (max_entries_ == 0 || max_entries_ > sf::kMaxNodeEntries) {
    return Fail(error, "invalid node capacity " +
                           std::to_string(max_entries_));
  }
  if (index_offset != sf::kHeaderSize) {
    return Fail(error, "malformed header (index offset)");
  }
  // All arithmetic stays in uint64_t, guarded against overflow by the cap
  // on node_count derivable from the file size itself.
  if (node_count_ > (size - sf::kHeaderSize) / 8) {
    return Fail(error, "malformed header (node count exceeds file)");
  }
  if (nodes_offset != sf::kHeaderSize + node_count_ * 8) {
    return Fail(error, "malformed header (nodes offset)");
  }
  if (node_count_ == 0) {
    if (root_ != sf::kInvalidRoot || height_ != 0 || size_ != 0) {
      return Fail(error, "malformed header (empty tree with root)");
    }
  } else {
    if (root_ != 0) {
      // BFS order puts the root first; anything else is not our builder's
      // output and breaks the acyclicity argument below.
      return Fail(error, "malformed header (root is not node 0)");
    }
  }

  if (options.verify_checksums) {
    const uint32_t body_crc = sf::LoadU32(data + sf::kBodyCrcOffset);
    if (Crc32c(data + sf::kHeaderSize, size - sf::kHeaderSize) != body_crc) {
      return Fail(error, "body checksum mismatch (file is corrupt)");
    }
  }

  // Structural walk: after this loop every node record is known to lie
  // in bounds with a sane entry count, so query-time access never needs a
  // bounds check.
  const uint64_t words = WordsForBits(num_bits_);
  index_ = reinterpret_cast<const uint64_t*>(data + sf::kHeaderSize);
  std::vector<uint16_t> levels(node_count_, 0);
  std::vector<uint32_t> counts(node_count_, 0);
  for (uint64_t i = 0; i < node_count_; ++i) {
    const uint64_t off = index_[i];
    if (off % 8 != 0) {
      return Fail(error, "node " + std::to_string(i) +
                             ": misaligned record offset");
    }
    if (off < nodes_offset || off + 8 > size) {
      return Fail(error, "node " + std::to_string(i) +
                             ": record offset out of bounds");
    }
    const uint16_t level = sf::LoadU16(data + off);
    const uint32_t count = sf::LoadU16(data + off + 2);
    if (count > max_entries_) {
      return Fail(error, "node " + std::to_string(i) +
                             ": entry count exceeds capacity");
    }
    if (sf::NodeRecordBytes(count, words) > size - off) {
      return Fail(error, "node " + std::to_string(i) +
                             ": record extends past end of file");
    }
    levels[i] = level;
    counts[i] = count;
  }

  // Tree shape: the root carries the height; every directory entry points
  // strictly forward (acyclic by construction) one level down; every
  // non-root node has exactly one parent. Together these make the node set
  // a single tree rooted at node 0.
  std::vector<uint8_t> in_degree(node_count_, 0);
  uint64_t leaf_entries = 0;
  for (uint64_t i = 0; i < node_count_; ++i) {
    const StaticNodeView node{
        reinterpret_cast<const uint64_t*>(data + index_[i]), num_bits_};
    if (node.IsLeaf()) {
      leaf_entries += counts[i];
      continue;
    }
    for (uint32_t e = 0; e < counts[i]; ++e) {
      const uint64_t child = node.EntryAt(e).ref;
      if (child >= node_count_ || child <= i) {
        return Fail(error, "node " + std::to_string(i) +
                               ": child reference out of order");
      }
      if (levels[child] + 1 != levels[i]) {
        return Fail(error, "node " + std::to_string(i) +
                               ": child level mismatch");
      }
      if (in_degree[child] != 0) {
        return Fail(error, "node " + std::to_string(child) +
                               ": multiple parents");
      }
      in_degree[child] = 1;
    }
  }
  for (uint64_t i = 1; i < node_count_; ++i) {
    if (in_degree[i] == 0) {
      return Fail(error, "node " + std::to_string(i) + ": unreachable");
    }
  }
  if (node_count_ > 0) {
    if (static_cast<uint32_t>(levels[0]) + 1 != height_) {
      return Fail(error, "malformed header (height does not match root)");
    }
  }
  if (leaf_entries != size_) {
    return Fail(error, "transaction count mismatch (header says " +
                           std::to_string(size_) + ", leaves hold " +
                           std::to_string(leaf_entries) + ")");
  }

  // Runtime option assembly mirrors LoadTree: adopt the file's width when
  // the caller left it unset, insist on agreement otherwise; the node
  // capacity always comes from the file.
  options_ = options.tree;
  if (options_.num_bits == 0) options_.num_bits = num_bits_;
  if (options_.num_bits != num_bits_) {
    return Fail(error, "signature width mismatch (file has " +
                           std::to_string(num_bits_) + " bits)");
  }
  options_.max_entries = max_entries_;

  data_ = data;
  data_size_ = size;
  if (error != nullptr) error->clear();
  return true;
}

std::unique_ptr<StaticTreeView> StaticTreeView::Open(
    Env* env, const std::string& path, const StaticOpenOptions& options,
    std::string* error) {
  std::unique_ptr<FileMapping> mapping = env->MapReadOnly(path);
  if (mapping == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return nullptr;
  }
  std::unique_ptr<StaticTreeView> view(new StaticTreeView());
  std::string reason;
  if (!view->Init(mapping->data(), mapping->size(), options, &reason)) {
    if (error != nullptr) *error = path + ": " + reason;
    return nullptr;
  }
  view->mapping_ = std::move(mapping);
  return view;
}

std::unique_ptr<StaticTreeView> StaticTreeView::OpenFromBytes(
    const uint8_t* data, size_t size, const StaticOpenOptions& options,
    std::string* error) {
  std::unique_ptr<StaticTreeView> view(new StaticTreeView());
  // Copy into an owned word buffer so validated reads are always aligned,
  // whatever the caller's buffer alignment.
  view->owned_words_.assign((size + sizeof(uint64_t) - 1) / sizeof(uint64_t),
                            0);
  if (size > 0) {
    std::memcpy(view->owned_words_.data(), data, size);
  }
  if (!view->Init(reinterpret_cast<const uint8_t*>(view->owned_words_.data()),
                  size, options, error)) {
    return nullptr;
  }
  return view;
}

}  // namespace sgtree
