#ifndef SGTREE_STATIC_STATIC_TREE_BACKEND_H_
#define SGTREE_STATIC_STATIC_TREE_BACKEND_H_

#include "exec/query_api.h"
#include "sgtree/search_core.h"
#include "static/static_tree_view.h"

namespace sgtree {

/// IndexBackend over an immutable static SG-tree image — the fifth backend
/// (the mutable four live in exec/index_backend.h; this one sits here so
/// sg_exec does not depend on the static format). Answers all six query
/// types through the same templated search cores the dynamic tree
/// instantiates, so its results — values, stats, and trace — are
/// byte-identical to SgTreeBackend over the equivalent dynamic tree.
/// Non-owning and trivially copyable, like the other adapters; `shared_
/// bound` attaches the cross-partition k-NN pruning bound and affects only
/// kKnn / kBestFirstKnn.
class StaticTreeBackend : public IndexBackend {
 public:
  explicit StaticTreeBackend(const StaticTreeView& view,
                             SharedPruneBound* shared_bound = nullptr)
      : view_(&view), shared_bound_(shared_bound) {}

  const char* name() const override { return "static"; }
  std::string SupportReason(QueryType /*type*/) const override {
    return std::string();  // All six query types.
  }
  std::string JoinInputReason() const override {
    return "static images serve point queries only; joins walk dynamic "
           "trees — load the snapshot (v1) or durable form to join";
  }
  void Run(const QueryRequest& request, const QueryContext& ctx,
           QueryResult* result) const override;

  const StaticTreeView& view() const { return *view_; }

 private:
  const StaticTreeView* view_;
  SharedPruneBound* shared_bound_;
};

}  // namespace sgtree

#endif  // SGTREE_STATIC_STATIC_TREE_BACKEND_H_
