#ifndef SGTREE_OBS_METRICS_H_
#define SGTREE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace sgtree {
namespace obs {

/// Number of per-thread shards each metric keeps. Increments from up to this
/// many threads proceed without sharing a cache line; more threads than
/// shards simply alternate shards (still correct, mildly contended).
inline constexpr uint32_t kMetricShards = 16;

/// Stable shard slot of the calling thread (thread id modulo kMetricShards,
/// assigned round-robin on first use).
uint32_t ThisThreadShard();

/// Named monotonic counter. The hot path is one relaxed fetch_add on the
/// calling thread's shard — no lock, no shared cache line; Value() merges
/// the shards on demand.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  const std::string& name() const { return name_; }

  void Increment(uint64_t delta = 1) {
    shards_[ThisThreadShard()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
  }

  /// Sum over shards. Concurrent increments may or may not be included —
  /// the usual monotonic-counter snapshot semantics.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  std::string name_;
  std::array<Shard, kMetricShards> shards_;
};

/// Fixed-bucket histogram with per-thread shards. `bounds` are the ascending
/// finite inclusive upper bounds (Prometheus `le` semantics); an implicit
/// +Inf overflow bucket catches everything above the last bound. Observe()
/// is two relaxed atomic updates (bucket count + shard sum), no locks.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  const std::string& name() const { return name_; }
  /// Finite upper bounds; the overflow bucket is implicit.
  const std::vector<double>& bounds() const { return bounds_; }

  void Observe(double value);

  /// Merged per-bucket counts, size bounds().size() + 1 (overflow last).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const;
  double Sum() const;

  /// Upper bound of the bucket holding the p-th percentile observation
  /// (p in [0, 100]): the smallest bound whose cumulative count reaches
  /// rank ceil(p/100 * Count()). Returns NaN when empty and +Inf when the
  /// rank lands in the overflow bucket. Exact whenever the bounds coincide
  /// with the observed values, conservative (rounds up to the bucket edge)
  /// otherwise.
  double Percentile(double p) const;

  void Reset();

 private:
  size_t BucketFor(double value) const;

  std::string name_;
  std::vector<double> bounds_;
  size_t num_buckets_;  // bounds_.size() + 1 (overflow).
  // Flat [shard][bucket] grid; a shard's row is contiguous so one thread's
  // observations stay on few cache lines.
  std::vector<std::atomic<uint64_t>> cells_;
  struct alignas(64) SumShard {
    std::atomic<double> value{0.0};
  };
  std::array<SumShard, kMetricShards> sums_;
};

/// Default latency buckets in microseconds: a 1-2-5 ladder from 1 us to
/// 10 s, matching the spread between a cached directory probe and a cold
/// multi-leaf range scan.
std::vector<double> LatencyBucketsUs();

/// Thread-safe registry of named metrics. Lookup takes a mutex once (cache
/// the returned pointer — it is stable for the registry's lifetime);
/// increments on the returned handles are lock-free.
///
/// Lock protocol: mu_ guards the name->metric maps (registration and
/// snapshot iteration). The Counter/Histogram objects themselves are
/// deliberately NOT guarded — their hot paths are sharded relaxed atomics,
/// safe to hit while another thread holds mu_ to register a new name.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name`, creating it on first use.
  Counter* GetCounter(const std::string& name) SGTREE_EXCLUDES(mu_);

  /// Returns the histogram named `name`, creating it with `bounds` (default
  /// LatencyBucketsUs()) on first use. Bounds of an existing histogram are
  /// not altered.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds = {})
      SGTREE_EXCLUDES(mu_);

  /// Snapshot of the registered metrics, sorted by name (deterministic
  /// export order). Pointers stay valid for the registry's lifetime.
  std::vector<const Counter*> Counters() const SGTREE_EXCLUDES(mu_);
  std::vector<const Histogram*> Histograms() const SGTREE_EXCLUDES(mu_);

  /// Zeroes every metric (keeps registrations).
  void Reset() SGTREE_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SGTREE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      SGTREE_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace sgtree

#endif  // SGTREE_OBS_METRICS_H_
