#ifndef SGTREE_OBS_EXPORT_H_
#define SGTREE_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "storage/io_stats.h"

namespace sgtree {
namespace obs {

/// JSON object with every registered metric:
/// {"counters": {name: value, ...},
///  "histograms": {name: {"bounds": [...], "counts": [...], "count": n,
///                        "sum": s, "p50": x, "p95": x, "p99": x}, ...}}
/// `counts` has one entry per finite bound plus the overflow bucket.
/// Non-finite numbers (empty-histogram percentiles, overflow-bucket
/// percentiles) are emitted as null.
std::string ToJson(const MetricsRegistry& registry);

/// Prometheus text exposition format: counters as `# TYPE name counter`,
/// histograms as cumulative `name_bucket{le="..."}` series (including
/// le="+Inf") plus `name_sum` / `name_count`. Metric names are sanitized to
/// [a-zA-Z0-9_:] as the format requires.
std::string ToPrometheus(const MetricsRegistry& registry);

/// JSON object with the trace's counters plus derived "nodes_visited".
std::string ToJson(const QueryTrace& trace);

/// JSON object with the pool counters plus "hit_ratio" — a number, or the
/// string "n/a" when no page was ever accessed (an empty pool has no hit
/// rate, not a 0% one).
std::string ToJson(const IoStats& stats);

/// Hit ratio for human-readable reports: "0.50"-style fixed precision, or
/// "n/a" for an untouched pool.
std::string FormatHitRatio(const IoStats& stats);

}  // namespace obs
}  // namespace sgtree

#endif  // SGTREE_OBS_EXPORT_H_
