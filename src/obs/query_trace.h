#ifndef SGTREE_OBS_QUERY_TRACE_H_
#define SGTREE_OBS_QUERY_TRACE_H_

#include <cstdint>
#include <string>

namespace sgtree {

/// Per-query pruning trace: a breakdown of *why* a query cost what it did,
/// complementing the coarse QueryStats counters the paper's figures report.
/// Filled by the search/join/backend code through QueryContext; aggregated
/// per batch by QueryExecutor and exported by obs::ToJson / ToPrometheus.
///
/// Counter semantics (see DESIGN.md §6 for the full contract):
///  - dir/leaf_nodes_visited: nodes actually read (one per GetNode charge;
///    for the bucketed backends a "leaf" is a bucket or posting list).
///  - signatures_tested: entry signatures a descend-or-prune decision was
///    computed for (MinDistBound, Contains, intersection, bucket bound).
///  - subtrees_descended / subtrees_pruned: outcome of those decisions. For
///    single-tree queries every tested signature resolves to exactly one of
///    the two; joins test several signatures per decision, so only
///    descended + pruned <= tested holds there.
///  - candidates_verified: leaf entries whose exact distance/predicate was
///    evaluated (== QueryStats::transactions_compared).
///  - false_drops: verified candidates that failed the predicate — the
///    signature filter's false positives (predicate queries only; k-NN has
///    no predicate and leaves this 0).
///  - results: candidates accepted into the result set.
///  - buffer_hits / buffer_misses: split of the node reads charged to the
///    context's pool (misses == this query's random I/Os); the simulated
///    multi-page bucket reads of the table/inverted backends count every
///    page as a miss.
struct QueryTrace {
  uint64_t dir_nodes_visited = 0;
  uint64_t leaf_nodes_visited = 0;
  uint64_t signatures_tested = 0;
  uint64_t subtrees_descended = 0;
  uint64_t subtrees_pruned = 0;
  uint64_t candidates_verified = 0;
  uint64_t false_drops = 0;
  uint64_t results = 0;
  uint64_t buffer_hits = 0;
  uint64_t buffer_misses = 0;

  uint64_t nodes_visited() const {
    return dir_nodes_visited + leaf_nodes_visited;
  }

  void Reset() { *this = QueryTrace{}; }

  QueryTrace& operator+=(const QueryTrace& other) {
    dir_nodes_visited += other.dir_nodes_visited;
    leaf_nodes_visited += other.leaf_nodes_visited;
    signatures_tested += other.signatures_tested;
    subtrees_descended += other.subtrees_descended;
    subtrees_pruned += other.subtrees_pruned;
    candidates_verified += other.candidates_verified;
    false_drops += other.false_drops;
    results += other.results;
    buffer_hits += other.buffer_hits;
    buffer_misses += other.buffer_misses;
    return *this;
  }

  friend bool operator==(const QueryTrace&, const QueryTrace&) = default;
};

/// Which consistency invariants CheckTraceInvariants enforces. The defaults
/// are what every single-tree query over a pooled context must satisfy;
/// relax them for joins (`strict_pruning = false`) and for backends without
/// a buffer pool or per-node I/O charge (`pooled = false`).
struct TraceCheckOptions {
  /// Every visited node was charged to a pool: visited == hits + misses.
  bool pooled = true;
  /// Every tested signature resolved to exactly one descend-or-prune:
  /// tested == descended + pruned, and descended == visited - 1 on a
  /// non-empty traversal (every node but the root is reached by a descend).
  bool strict_pruning = true;
  /// The query has a predicate, so verified == results + false_drops.
  /// Without one (k-NN), only verified >= results and false_drops == 0.
  bool predicate = true;
};

/// Returns an empty string when `trace` is self-consistent under `options`,
/// otherwise a semicolon-separated list of the violated invariants — the
/// differential harness in tests/test_query_trace.cc asserts on this.
inline std::string CheckTraceInvariants(const QueryTrace& trace,
                                        const TraceCheckOptions& options = {}) {
  std::string errors;
  auto fail = [&errors](const std::string& message) {
    if (!errors.empty()) errors += "; ";
    errors += message;
  };
  auto num = [](uint64_t v) { return std::to_string(v); };

  if (options.pooled &&
      trace.nodes_visited() != trace.buffer_hits + trace.buffer_misses) {
    fail("nodes_visited " + num(trace.nodes_visited()) +
         " != buffer_hits + buffer_misses " +
         num(trace.buffer_hits + trace.buffer_misses));
  }
  if (options.strict_pruning) {
    if (trace.signatures_tested !=
        trace.subtrees_descended + trace.subtrees_pruned) {
      fail("signatures_tested " + num(trace.signatures_tested) +
           " != descended + pruned " +
           num(trace.subtrees_descended + trace.subtrees_pruned));
    }
    if (trace.nodes_visited() > 0 &&
        trace.subtrees_descended != trace.nodes_visited() - 1) {
      fail("subtrees_descended " + num(trace.subtrees_descended) +
           " != nodes_visited - 1 = " + num(trace.nodes_visited() - 1));
    }
  } else if (trace.subtrees_descended + trace.subtrees_pruned >
             trace.signatures_tested) {
    fail("descended + pruned " +
         num(trace.subtrees_descended + trace.subtrees_pruned) +
         " > signatures_tested " + num(trace.signatures_tested));
  }
  if (options.predicate) {
    if (trace.candidates_verified != trace.results + trace.false_drops) {
      fail("candidates_verified " + num(trace.candidates_verified) +
           " != results + false_drops " +
           num(trace.results + trace.false_drops));
    }
  } else if (trace.false_drops != 0) {
    fail("false_drops " + num(trace.false_drops) +
         " != 0 on a predicate-free query");
  }
  if (trace.candidates_verified < trace.results) {
    fail("candidates_verified " + num(trace.candidates_verified) +
         " < results " + num(trace.results));
  }
  return errors;
}

}  // namespace sgtree

#endif  // SGTREE_OBS_QUERY_TRACE_H_
