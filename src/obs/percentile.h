#ifndef SGTREE_OBS_PERCENTILE_H_
#define SGTREE_OBS_PERCENTILE_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace sgtree::obs {

/// Nearest-rank percentile over an ascending-sorted sample. `p` is in
/// [0, 100]; an empty sample yields 0. This is the one definition every
/// latency report in the tree uses (executor batch reports, router batch
/// reports, bench tables), so p99 numbers are comparable across layers.
inline double NearestRankPercentile(const std::vector<double>& sorted_ascending,
                                    double p) {
  if (sorted_ascending.empty()) return 0;
  const double frac =
      p / 100.0 * static_cast<double>(sorted_ascending.size());
  size_t rank = static_cast<size_t>(std::ceil(frac));
  if (rank < 1) rank = 1;
  if (rank > sorted_ascending.size()) rank = sorted_ascending.size();
  return sorted_ascending[rank - 1];
}

/// Convenience for unsorted samples: sorts `samples` in place, then takes
/// the nearest-rank percentile.
inline double SortAndPercentile(std::vector<double>& samples, double p) {
  std::sort(samples.begin(), samples.end());
  return NearestRankPercentile(samples, p);
}

}  // namespace sgtree::obs

#endif  // SGTREE_OBS_PERCENTILE_H_
