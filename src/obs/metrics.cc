#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace sgtree {
namespace obs {

uint32_t ThisThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      num_buckets_(bounds_.size() + 1),
      cells_(kMetricShards * (bounds_.size() + 1)) {
  SGTREE_ASSERT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                    "histogram bounds must be ascending");
  for (double b : bounds_) {
    SGTREE_ASSERT_MSG(std::isfinite(b), "histogram bounds must be finite");
  }
}

size_t Histogram::BucketFor(double value) const {
  // First bound >= value (le semantics); everything above the last bound
  // lands in the overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<size_t>(it - bounds_.begin());
}

void Histogram::Observe(double value) {
  const uint32_t shard = ThisThreadShard();
  cells_[shard * num_buckets_ + BucketFor(value)].fetch_add(
      1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is C++20 but spotty in older toolchains; a
  // CAS loop on a shard only this thread usually touches is just as cheap.
  std::atomic<double>& sum = sums_[shard].value;
  double old = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(old, old + value,
                                    std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> merged(num_buckets_, 0);
  for (uint32_t shard = 0; shard < kMetricShards; ++shard) {
    for (size_t b = 0; b < num_buckets_; ++b) {
      merged[b] += cells_[shard * num_buckets_ + b].load(
          std::memory_order_relaxed);
    }
  }
  return merged;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const std::atomic<uint64_t>& cell : cells_) {
    total += cell.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0;
  for (const SumShard& shard : sums_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Percentile(double p) const {
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    cumulative += counts[b];
    if (cumulative >= rank) {
      return b < bounds_.size() ? bounds_[b]
                                : std::numeric_limits<double>::infinity();
    }
  }
  return std::numeric_limits<double>::infinity();  // Unreachable.
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& cell : cells_) {
    cell.store(0, std::memory_order_relaxed);
  }
  for (SumShard& shard : sums_) {
    shard.value.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<double> LatencyBucketsUs() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(2.0 * decade);
    bounds.push_back(5.0 * decade);
  }
  bounds.push_back(1e7);  // 10 s; anything slower overflows.
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name);
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(
        name, bounds.empty() ? LatencyBucketsUs() : bounds);
  }
  return slot.get();
}

std::vector<const Counter*> MetricsRegistry::Counters() const {
  MutexLock lock(&mu_);
  std::vector<const Counter*> result;
  result.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    result.push_back(counter.get());
  }
  return result;  // std::map iteration is already name-sorted.
}

std::vector<const Histogram*> MetricsRegistry::Histograms() const {
  MutexLock lock(&mu_);
  std::vector<const Histogram*> result;
  result.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    result.push_back(histogram.get());
  }
  return result;
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (const auto& [name, counter] : counters_) counter->Reset();
  for (const auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace obs
}  // namespace sgtree
