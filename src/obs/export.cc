#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

namespace sgtree {
namespace obs {
namespace {

// Shortest-ish round-trippable rendering; %g keeps integral values clean
// ("42", not "42.000000") so golden tests stay readable.
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

// A JSON number, or null for NaN/Inf (JSON has no non-finite literals).
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  return FormatDouble(value);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string PrometheusName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "_" + out;
  return out;
}

}  // namespace

std::string ToJson(const MetricsRegistry& registry) {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const Counter* counter : registry.Counters()) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(counter->name()) << "\":" << counter->Value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const Histogram* histogram : registry.Histograms()) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(histogram->name()) << "\":{\"bounds\":[";
    const std::vector<double>& bounds = histogram->bounds();
    for (size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) out << ",";
      out << JsonNumber(bounds[i]);
    }
    out << "],\"counts\":[";
    const std::vector<uint64_t> counts = histogram->BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out << ",";
      out << counts[i];
    }
    out << "],\"count\":" << histogram->Count()
        << ",\"sum\":" << JsonNumber(histogram->Sum())
        << ",\"p50\":" << JsonNumber(histogram->Percentile(50))
        << ",\"p95\":" << JsonNumber(histogram->Percentile(95))
        << ",\"p99\":" << JsonNumber(histogram->Percentile(99)) << "}";
  }
  out << "}}";
  return out.str();
}

std::string ToPrometheus(const MetricsRegistry& registry) {
  std::ostringstream out;
  for (const Counter* counter : registry.Counters()) {
    const std::string name = PrometheusName(counter->name());
    out << "# TYPE " << name << " counter\n";
    out << name << " " << counter->Value() << "\n";
  }
  for (const Histogram* histogram : registry.Histograms()) {
    const std::string name = PrometheusName(histogram->name());
    out << "# TYPE " << name << " histogram\n";
    const std::vector<double>& bounds = histogram->bounds();
    const std::vector<uint64_t> counts = histogram->BucketCounts();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out << name << "_bucket{le=\"" << FormatDouble(bounds[i]) << "\"} "
          << cumulative << "\n";
    }
    cumulative += counts.back();
    out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    out << name << "_sum " << FormatDouble(histogram->Sum()) << "\n";
    out << name << "_count " << cumulative << "\n";
  }
  return out.str();
}

std::string ToJson(const QueryTrace& trace) {
  std::ostringstream out;
  out << "{\"dir_nodes_visited\":" << trace.dir_nodes_visited
      << ",\"leaf_nodes_visited\":" << trace.leaf_nodes_visited
      << ",\"nodes_visited\":" << trace.nodes_visited()
      << ",\"signatures_tested\":" << trace.signatures_tested
      << ",\"subtrees_descended\":" << trace.subtrees_descended
      << ",\"subtrees_pruned\":" << trace.subtrees_pruned
      << ",\"candidates_verified\":" << trace.candidates_verified
      << ",\"false_drops\":" << trace.false_drops
      << ",\"results\":" << trace.results
      << ",\"buffer_hits\":" << trace.buffer_hits
      << ",\"buffer_misses\":" << trace.buffer_misses << "}";
  return out.str();
}

std::string ToJson(const IoStats& stats) {
  std::ostringstream out;
  out << "{\"page_accesses\":" << stats.page_accesses
      << ",\"buffer_hits\":" << stats.buffer_hits
      << ",\"random_ios\":" << stats.random_ios
      << ",\"page_writes\":" << stats.page_writes << ",\"hit_ratio\":";
  const double ratio = stats.HitRatio();
  if (std::isnan(ratio)) {
    out << "\"n/a\"";
  } else {
    out << JsonNumber(ratio);
  }
  out << "}";
  return out.str();
}

std::string FormatHitRatio(const IoStats& stats) {
  const double ratio = stats.HitRatio();
  if (std::isnan(ratio)) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ratio);
  return buf;
}

}  // namespace obs
}  // namespace sgtree
