#include "sgtable/item_clustering.h"

#include <algorithm>

namespace sgtree {
namespace {

struct ClusterState {
  std::vector<ItemId> items;
  uint64_t support = 0;
  bool active = false;
};

}  // namespace

std::vector<VerticalSignature> ClusterItems(
    const CooccurrenceMatrix& matrix, const ItemClusteringOptions& options) {
  const uint32_t n = matrix.num_items();
  const uint32_t k = std::max<uint32_t>(1, options.num_signatures);

  // Critical mass in absolute support.
  uint64_t total_support = 0;
  for (ItemId item = 0; item < n; ++item) {
    total_support += matrix.Support(item);
  }
  const auto critical_mass = static_cast<uint64_t>(
      options.critical_mass_fraction * static_cast<double>(total_support));

  // Singleton clusters for items that occur at all.
  std::vector<ClusterState> clusters(n);
  uint32_t active_count = 0;
  for (ItemId item = 0; item < n; ++item) {
    if (matrix.Support(item) == 0) continue;
    clusters[item].items = {item};
    clusters[item].support = matrix.Support(item);
    clusters[item].active = true;
    ++active_count;
  }

  std::vector<VerticalSignature> frozen;
  auto freeze = [&](uint32_t c) {
    frozen.push_back(VerticalSignature{clusters[c].items,
                                       clusters[c].support});
    clusters[c].active = false;
    --active_count;
  };

  // Single-linkage similarity matrix over clusters (co-occurrence counts).
  std::vector<std::vector<uint64_t>> sim(n);
  for (uint32_t a = 0; a < n; ++a) {
    if (!clusters[a].active) continue;
    sim[a].assign(n, 0);
    for (uint32_t b = 0; b < n; ++b) {
      if (b != a && clusters[b].active) sim[a][b] = matrix.Count(a, b);
    }
  }

  // Per-row maxima, kept up to date across merges.
  std::vector<uint64_t> row_max(n, 0);
  std::vector<uint32_t> row_arg(n, n);
  auto recompute_row = [&](uint32_t a) {
    row_max[a] = 0;
    row_arg[a] = n;
    for (uint32_t b = 0; b < n; ++b) {
      if (b != a && clusters[b].active && sim[a][b] > row_max[a]) {
        row_max[a] = sim[a][b];
        row_arg[a] = b;
      }
    }
  };
  for (uint32_t a = 0; a < n; ++a) {
    if (clusters[a].active) recompute_row(a);
  }

  // Freeze clusters that are already over the critical mass (very frequent
  // single items).
  for (uint32_t a = 0; a < n; ++a) {
    if (clusters[a].active && clusters[a].support > critical_mass &&
        critical_mass > 0) {
      freeze(a);
    }
  }

  while (active_count + frozen.size() > k && active_count >= 2) {
    // Globally most co-occurring active pair.
    uint32_t best_a = n;
    uint64_t best_sim = 0;
    for (uint32_t a = 0; a < n; ++a) {
      if (!clusters[a].active) continue;
      if (row_arg[a] != n && !clusters[row_arg[a]].active) recompute_row(a);
      if (row_arg[a] != n && row_max[a] > best_sim) {
        best_sim = row_max[a];
        best_a = a;
      }
    }
    if (best_a == n || best_sim == 0) break;  // Nothing co-occurs any more.
    const uint32_t a = best_a;
    const uint32_t b = row_arg[a];

    // Merge b into a (single linkage: similarities take the max).
    clusters[a].items.insert(clusters[a].items.end(),
                             clusters[b].items.begin(),
                             clusters[b].items.end());
    clusters[a].support += clusters[b].support;
    clusters[b].active = false;
    --active_count;
    for (uint32_t c = 0; c < n; ++c) {
      if (!clusters[c].active || c == a) continue;
      const uint64_t merged = std::max(sim[a][c], sim[b][c]);
      sim[a][c] = merged;
      sim[c][a] = merged;
      if (merged > row_max[c]) {
        row_max[c] = merged;
        row_arg[c] = a;
      } else if (row_arg[c] == b) {
        row_arg[c] = a;  // sim[c][a] >= old sim[c][b] under single linkage.
      }
    }
    recompute_row(a);

    // Critical mass: remove the group before it grows larger.
    if (critical_mass > 0 && clusters[a].support > critical_mass) {
      freeze(a);
    }
  }

  // Assemble: frozen groups first, then the remaining active ones; keep the
  // k with the highest support.
  std::vector<VerticalSignature> result = std::move(frozen);
  for (uint32_t a = 0; a < n; ++a) {
    if (clusters[a].active) {
      result.push_back(
          VerticalSignature{clusters[a].items, clusters[a].support});
    }
  }
  std::sort(result.begin(), result.end(),
            [](const VerticalSignature& x, const VerticalSignature& y) {
              return x.total_support > y.total_support;
            });
  if (result.size() > k) result.resize(k);
  for (VerticalSignature& group : result) {
    std::sort(group.items.begin(), group.items.end());
  }
  return result;
}

}  // namespace sgtree
