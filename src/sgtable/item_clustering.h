#ifndef SGTREE_SGTABLE_ITEM_CLUSTERING_H_
#define SGTREE_SGTABLE_ITEM_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "sgtable/cooccurrence.h"

namespace sgtree {

/// Item clustering for the SG-table (Section 2.2.1): "a minimum spanning
/// tree algorithm is run to cluster the set of items into groups each
/// containing frequently correlated items. The grouping starts by
/// considering each item a separate cluster and progressively refines the
/// clusters by merging item pairs with the maximum co-occurrence frequency.
/// Groups for which the total support of their contents exceeds a certain
/// threshold (critical mass) are removed before they grow larger."
struct ItemClusteringOptions {
  /// Number of vertical signatures (K) to produce. The table then has 2^K
  /// conceptual entries, so K is kept small (the original paper uses
  /// K around 10-20).
  uint32_t num_signatures = 12;
  /// Critical mass as a fraction of total item support: clusters whose
  /// accumulated support exceeds this are frozen.
  double critical_mass_fraction = 0.1;
};

/// One vertical signature: a frequently co-occurring item group.
struct VerticalSignature {
  std::vector<ItemId> items;  // Sorted ascending.
  uint64_t total_support = 0;
};

/// Runs the single-linkage (MST) agglomeration and returns at most
/// `options.num_signatures` vertical signatures covering the most
/// frequently co-occurring item groups. Items that never co-occur with the
/// selected groups are left out (they contribute no discrimination).
std::vector<VerticalSignature> ClusterItems(
    const CooccurrenceMatrix& matrix, const ItemClusteringOptions& options);

}  // namespace sgtree

#endif  // SGTREE_SGTABLE_ITEM_CLUSTERING_H_
