#ifndef SGTREE_SGTABLE_SG_TABLE_H_
#define SGTREE_SGTABLE_SG_TABLE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "baseline/linear_scan.h"
#include "common/signature.h"
#include "common/stats.h"
#include "data/transaction.h"
#include "sgtable/item_clustering.h"
#include "storage/page.h"
#include "storage/query_context.h"

namespace sgtree {

/// Build parameters of the signature table. Unlike the SG-tree these are
/// hardwired at construction time — the paper's central criticism of the
/// structure.
struct SgTableOptions {
  ItemClusteringOptions clustering;
  /// Activation threshold theta: a transaction activates a vertical
  /// signature V when |t AND V| >= theta.
  uint32_t activation_threshold = 2;
  /// Page size used to charge bucket reads as random I/Os.
  uint32_t page_size = kDefaultPageSize;
  /// Cap on transactions scanned when building the co-occurrence matrix
  /// (0 = scan everything).
  uint32_t cooccurrence_sample = 0;
};

/// The SG-table baseline (Aggarwal, Wolf & Yu, SIGMOD'99; Section 2.2.1 of
/// the paper): items are clustered into K "vertical signatures"; each
/// transaction is hashed to the bucket named by the K-bit code of which
/// signatures it activates. Nearest-neighbor search computes an optimistic
/// distance lower bound per occupied bucket, reads buckets in ascending
/// bound order and stops when the bound exceeds the best distance found.
///
/// Only Hamming distance is supported — the bucket bound is specific to it.
class SgTable {
 public:
  /// Builds the table from `dataset`: co-occurrence scan, item clustering,
  /// then hashing of every transaction.
  SgTable(const Dataset& dataset, const SgTableOptions& options);

  /// Hashes one new transaction into the table. Note the vertical
  /// signatures are NOT re-derived — exactly the staleness the paper's
  /// dynamic-update experiment (Figure 17) exercises.
  void Insert(const Transaction& txn);

  size_t size() const { return size_; }
  uint32_t num_bits() const { return num_bits_; }
  const std::vector<VerticalSignature>& vertical_signatures() const {
    return groups_;
  }
  size_t occupied_buckets() const { return buckets_.size(); }

  /// K-bit activation code of a transaction signature (bit i set iff it
  /// activates vertical signature i).
  uint64_t ActivationCode(const Signature& sig) const;

  /// Lower bound on the Hamming distance between `query` and any
  /// transaction hashed to bucket `code`.
  double BucketBound(const Signature& query, uint64_t code) const;

  // -- Queries (Hamming distance) --------------------------------------
  //
  // The context forms fill the per-query QueryTrace (buckets count as leaf
  // nodes; reading one charges its simulated pages as buffer misses — the
  // table models no buffer pool, so `ctx.pool` is ignored). The QueryStats*
  // forms are shorthand for a context carrying only stats.

  Neighbor Nearest(const Signature& query, QueryStats* stats = nullptr) const;
  Neighbor Nearest(const Signature& query, const QueryContext& ctx) const;
  std::vector<Neighbor> KNearest(const Signature& query, uint32_t k,
                                 QueryStats* stats = nullptr) const;
  std::vector<Neighbor> KNearest(const Signature& query, uint32_t k,
                                 const QueryContext& ctx) const;
  std::vector<Neighbor> Range(const Signature& query, double epsilon,
                              QueryStats* stats = nullptr) const;
  std::vector<Neighbor> Range(const Signature& query, double epsilon,
                              const QueryContext& ctx) const;

 private:
  struct Bucket {
    std::vector<Signature> signatures;
    std::vector<uint64_t> tids;
    size_t bytes = 0;  // Simulated on-disk size, for I/O accounting.
  };

  struct BoundedBucket {
    double bound;
    const Bucket* bucket;
  };

  /// Occupied buckets sorted by ascending BucketBound for `query`.
  std::vector<BoundedBucket> SortedBuckets(const Signature& query,
                                           const QueryContext& ctx) const;

  void ChargeBucketRead(const Bucket& bucket, const QueryContext& ctx) const;

  SgTableOptions options_;
  uint32_t num_bits_ = 0;
  size_t size_ = 0;
  std::vector<VerticalSignature> groups_;
  std::vector<Signature> group_bitmaps_;
  std::map<uint64_t, Bucket> buckets_;
};

}  // namespace sgtree

#endif  // SGTREE_SGTABLE_SG_TABLE_H_
