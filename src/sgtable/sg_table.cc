#include "sgtable/sg_table.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

#include "storage/codec.h"

namespace sgtree {

SgTable::SgTable(const Dataset& dataset, const SgTableOptions& options)
    : options_(options), num_bits_(dataset.num_items) {
  CooccurrenceMatrix matrix(dataset, options_.cooccurrence_sample);
  groups_ = ClusterItems(matrix, options_.clustering);
  SGTREE_ASSERT_MSG(groups_.size() <= 64, "activation codes are 64-bit");
  group_bitmaps_.reserve(groups_.size());
  for (const VerticalSignature& group : groups_) {
    group_bitmaps_.push_back(Signature::FromItems(group.items, num_bits_));
  }
  for (const Transaction& txn : dataset.transactions) {
    Insert(txn);
  }
}

void SgTable::Insert(const Transaction& txn) {
  const Signature sig = Signature::FromItems(txn.items, num_bits_);
  Bucket& bucket = buckets_[ActivationCode(sig)];
  // Charge the uncompressed record size, matching the SG-tree's
  // uncompressed page layout so the I/O comparison is apples-to-apples.
  bucket.bytes += 8 + DenseEncodedSize(sig.num_bits());
  bucket.signatures.push_back(sig);
  bucket.tids.push_back(txn.tid);
  ++size_;
}

uint64_t SgTable::ActivationCode(const Signature& sig) const {
  uint64_t code = 0;
  for (size_t i = 0; i < group_bitmaps_.size(); ++i) {
    if (Signature::IntersectCount(sig, group_bitmaps_[i]) >=
        options_.activation_threshold) {
      code |= uint64_t{1} << i;
    }
  }
  return code;
}

double SgTable::BucketBound(const Signature& query, uint64_t code) const {
  // For each vertical signature V_i with x_i = |q AND V_i|, a transaction t
  // in this bucket has |t AND V_i| >= theta when bit i is set and <= theta-1
  // otherwise. The Hamming distance restricted to the (disjoint) item group
  // V_i is at least | x_i - |t AND V_i| |, minimized over the allowed range:
  //   bit = 1:  max(0, theta - x_i)
  //   bit = 0:  max(0, x_i - (theta - 1))
  // Summing over groups gives the optimistic bucket bound of Section 2.2.1.
  const auto theta = static_cast<int64_t>(options_.activation_threshold);
  int64_t bound = 0;
  for (size_t i = 0; i < group_bitmaps_.size(); ++i) {
    const auto x = static_cast<int64_t>(
        Signature::IntersectCount(query, group_bitmaps_[i]));
    if ((code >> i) & 1) {
      bound += std::max<int64_t>(0, theta - x);
    } else {
      bound += std::max<int64_t>(0, x - (theta - 1));
    }
  }
  return static_cast<double>(bound);
}

std::vector<SgTable::BoundedBucket> SgTable::SortedBuckets(
    const Signature& query, const QueryContext& ctx) const {
  std::vector<BoundedBucket> order;
  order.reserve(buckets_.size());
  for (const auto& [code, bucket] : buckets_) {
    order.push_back({BucketBound(query, code), &bucket});
  }
  ctx.CountBounds(order.size());
  std::sort(order.begin(), order.end(),
            [](const BoundedBucket& a, const BoundedBucket& b) {
              return a.bound < b.bound;
            });
  return order;
}

void SgTable::ChargeBucketRead(const Bucket& bucket,
                               const QueryContext& ctx) const {
  ctx.CountNode(/*leaf=*/true);
  ctx.CountVerified(bucket.signatures.size());
  // A bucket occupies ceil(bytes / page) pages on disk; reading it costs
  // that many random I/Os (at least one).
  ctx.ChargeSimulatedIo(
      std::max<uint64_t>(1, (bucket.bytes + options_.page_size - 1) /
                                options_.page_size));
}

Neighbor SgTable::Nearest(const Signature& query, QueryStats* stats) const {
  return Nearest(query, QueryContext{nullptr, stats, nullptr});
}

Neighbor SgTable::Nearest(const Signature& query,
                          const QueryContext& ctx) const {
  auto result = KNearest(query, 1, ctx);
  if (result.empty()) {
    return {0, std::numeric_limits<double>::infinity()};
  }
  return result.front();
}

std::vector<Neighbor> SgTable::KNearest(const Signature& query, uint32_t k,
                                        QueryStats* stats) const {
  return KNearest(query, k, QueryContext{nullptr, stats, nullptr});
}

std::vector<Neighbor> SgTable::KNearest(const Signature& query, uint32_t k,
                                        const QueryContext& ctx) const {
  std::vector<Neighbor> heap;  // Max-heap under Less.
  auto less = [](const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.tid < b.tid;
  };
  auto tau = [&]() {
    return heap.size() < k ? std::numeric_limits<double>::infinity()
                           : heap.front().distance;
  };
  if (k == 0) return heap;

  const std::vector<BoundedBucket> order = SortedBuckets(query, ctx);
  for (size_t bi = 0; bi < order.size(); ++bi) {
    const BoundedBucket& bb = order[bi];
    // Buckets are in ascending bound order: once the bound reaches the k-th
    // best distance no remaining bucket can improve the result.
    if (bb.bound >= tau()) {
      ctx.TracePruned(order.size() - bi);
      break;
    }
    ctx.TraceDescended(1);
    ChargeBucketRead(*bb.bucket, ctx);
    for (size_t i = 0; i < bb.bucket->signatures.size(); ++i) {
      const double d =
          Distance(query, bb.bucket->signatures[i], Metric::kHamming);
      const Neighbor candidate{bb.bucket->tids[i], d};
      if (heap.size() < k) {
        heap.push_back(candidate);
        std::push_heap(heap.begin(), heap.end(), less);
      } else if (less(candidate, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), less);
        heap.back() = candidate;
        std::push_heap(heap.begin(), heap.end(), less);
      }
    }
  }
  std::sort(heap.begin(), heap.end(), less);
  ctx.TraceResults(heap.size());
  return heap;
}

std::vector<Neighbor> SgTable::Range(const Signature& query, double epsilon,
                                     QueryStats* stats) const {
  return Range(query, epsilon, QueryContext{nullptr, stats, nullptr});
}

std::vector<Neighbor> SgTable::Range(const Signature& query, double epsilon,
                                     const QueryContext& ctx) const {
  std::vector<Neighbor> result;
  const std::vector<BoundedBucket> order = SortedBuckets(query, ctx);
  for (size_t bi = 0; bi < order.size(); ++bi) {
    const BoundedBucket& bb = order[bi];
    if (bb.bound > epsilon) {
      ctx.TracePruned(order.size() - bi);
      break;
    }
    ctx.TraceDescended(1);
    ChargeBucketRead(*bb.bucket, ctx);
    uint64_t matched = 0;
    for (size_t i = 0; i < bb.bucket->signatures.size(); ++i) {
      const double d =
          Distance(query, bb.bucket->signatures[i], Metric::kHamming);
      if (d <= epsilon) {
        result.push_back({bb.bucket->tids[i], d});
        ++matched;
      }
    }
    ctx.TraceResults(matched);
    ctx.TraceFalseDrops(bb.bucket->signatures.size() - matched);
  }
  std::sort(result.begin(), result.end(),
            [](const Neighbor& a, const Neighbor& b) {
              return a.distance != b.distance ? a.distance < b.distance
                                              : a.tid < b.tid;
            });
  return result;
}

}  // namespace sgtree
