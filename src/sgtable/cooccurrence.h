#ifndef SGTREE_SGTABLE_COOCCURRENCE_H_
#define SGTREE_SGTABLE_COOCCURRENCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/transaction.h"

namespace sgtree {

/// Pairwise item co-occurrence counts over a dataset, the input to the
/// SG-table's item clustering. Stored as an upper-triangular matrix; memory
/// is O(|items|^2 / 2), fine for the dictionary sizes of this domain
/// (hundreds to a few thousand items).
class CooccurrenceMatrix {
 public:
  /// Counts pairs over all transactions of `dataset`. `max_transactions`
  /// optionally caps the scan (sampling for very large datasets); 0 = all.
  explicit CooccurrenceMatrix(const Dataset& dataset,
                              uint32_t max_transactions = 0);

  uint32_t num_items() const { return num_items_; }

  /// Number of transactions containing both `a` and `b` (within the sample).
  uint64_t Count(ItemId a, ItemId b) const;

  /// Number of sampled transactions containing `item`.
  uint64_t Support(ItemId item) const { return support_[item]; }

  /// Transactions scanned.
  uint64_t transactions_scanned() const { return scanned_; }

 private:
  size_t IndexOf(ItemId a, ItemId b) const;

  uint32_t num_items_;
  uint64_t scanned_ = 0;
  std::vector<uint32_t> counts_;   // Upper triangle, row-major.
  std::vector<uint64_t> support_;
};

}  // namespace sgtree

#endif  // SGTREE_SGTABLE_COOCCURRENCE_H_
