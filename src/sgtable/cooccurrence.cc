#include "sgtable/cooccurrence.h"

#include <algorithm>

#include "common/check.h"

namespace sgtree {

CooccurrenceMatrix::CooccurrenceMatrix(const Dataset& dataset,
                                       uint32_t max_transactions)
    : num_items_(dataset.num_items),
      counts_(static_cast<size_t>(num_items_) * (num_items_ + 1) / 2, 0),
      support_(num_items_, 0) {
  size_t limit = dataset.transactions.size();
  if (max_transactions != 0) {
    limit = std::min<size_t>(limit, max_transactions);
  }
  for (size_t t = 0; t < limit; ++t) {
    const auto& items = dataset.transactions[t].items;
    for (size_t i = 0; i < items.size(); ++i) {
      ++support_[items[i]];
      for (size_t j = i + 1; j < items.size(); ++j) {
        ++counts_[IndexOf(items[i], items[j])];
      }
    }
    ++scanned_;
  }
}

size_t CooccurrenceMatrix::IndexOf(ItemId a, ItemId b) const {
  SGTREE_DCHECK(a < num_items_ && b < num_items_);
  if (a > b) std::swap(a, b);
  // Row-major upper triangle including the diagonal: row a starts after
  // a*(2n - a + 1)/2 cells.
  const size_t n = num_items_;
  return static_cast<size_t>(a) * (2 * n - a + 1) / 2 + (b - a);
}

uint64_t CooccurrenceMatrix::Count(ItemId a, ItemId b) const {
  if (a == b) return support_[a];
  return counts_[IndexOf(a, b)];
}

}  // namespace sgtree
