#include "exec/join_api.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sgtree {
namespace {

std::string FormatDouble(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

// Counts every emitted pair on behalf of JoinResult, then forwards to the
// caller's sink (if any). This is what keeps `pairs` consistent across
// backends without each algorithm counting for itself.
class MeteredSink : public JoinSink {
 public:
  MeteredSink(JoinSink* inner, uint64_t* pairs)
      : inner_(inner), pairs_(pairs) {}
  bool OnPair(const JoinPair& pair) override {
    ++*pairs_;
    return inner_ == nullptr || inner_->OnPair(pair);
  }

 private:
  JoinSink* inner_;
  uint64_t* pairs_;
};

}  // namespace

std::string ValidateJoinRequest(const JoinRequest& request) {
  if (request.type == JoinType::kContainment) {
    return std::string();  // Predicate-only: nothing to validate.
  }
  if (std::isnan(request.threshold)) {
    return "threshold must be a number for similarity joins, got NaN";
  }
  switch (request.metric) {
    case Metric::kHamming:
      if (std::isinf(request.threshold) || request.threshold < 0.0) {
        return "threshold must be a finite distance >= 0 for hamming "
               "similarity joins, got " +
               FormatDouble(request.threshold);
      }
      break;
    case Metric::kJaccard:
    case Metric::kDice:
    case Metric::kCosine:
      if (!(request.threshold > 0.0) || request.threshold > 1.0) {
        return "threshold must be in (0,1] for " + MetricName(request.metric) +
               " similarity joins, got " + FormatDouble(request.threshold);
      }
      break;
  }
  return std::string();
}

double JoinDistanceBound(const JoinRequest& request) {
  if (request.metric == Metric::kHamming) return request.threshold;
  return 1.0 - request.threshold;
}

JoinResult ExecuteJoin(const JoinBackend& backend, const JoinRequest& request,
                       JoinSink* sink) {
  JoinResult result;
  result.error = ValidateJoinRequest(request);
  if (!result.ok()) return result;
  result.error = backend.SupportReason(request);
  if (!result.ok()) return result;

  const QueryContext ctx{nullptr, &result.stats, &result.trace};
  MeteredSink metered(sink, &result.pairs);
  Timer timer;
  result.truncated = !backend.Run(request, ctx, &metered);
  result.elapsed_us = timer.ElapsedMs() * 1000.0;
  return result;
}

bool CanonicalPairLess(const JoinPair& x, const JoinPair& y) {
  if (x.tid_a != y.tid_a) return x.tid_a < y.tid_a;
  return x.tid_b < y.tid_b;
}

JoinResult CollectJoin(const JoinBackend& backend, const JoinRequest& request,
                       std::vector<JoinPair>* pairs) {
  pairs->clear();
  VectorJoinSink sink(pairs);
  JoinResult result = ExecuteJoin(backend, request, &sink);
  std::sort(pairs->begin(), pairs->end(), CanonicalPairLess);
  return result;
}

}  // namespace sgtree
