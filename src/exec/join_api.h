#ifndef SGTREE_EXEC_JOIN_API_H_
#define SGTREE_EXEC_JOIN_API_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/distance.h"
#include "common/stats.h"
#include "obs/query_trace.h"
#include "sgtree/join.h"
#include "storage/query_context.h"

namespace sgtree {

/// The collection-level half of the unified query API: one request/result
/// shape for whole-collection joins, mirroring what QueryRequest/Execute()
/// does for point queries. Callers build a JoinRequest, pick a JoinBackend
/// (src/join/ holds the concrete algorithms; shard/join_router.h runs them
/// scatter-gathered), and call ExecuteJoin() — parameter validation,
/// support checking, context wiring, pair counting, and timing happen in
/// exactly one place.
///
/// Joins stream: backends push pairs into a JoinSink (sgtree/join.h) as
/// they are found, so multi-million-pair outputs never have to materialize.
/// CollectJoin() is the convenience wrapper for callers that do want the
/// vector, sorted in the canonical (tid_a, tid_b) order every backend and
/// the sharded router are tested byte-identical under.

/// The two collection-join predicates.
enum class JoinType {
  kContainment,  // R ⋈⊆ S: items(r) ⊆ items(s); pair distance = |s| - |r|.
  kSimilarity,   // distance(r, s) within the threshold under `metric`.
};

/// One collection-level join. `metric` and `threshold` apply to
/// kSimilarity only: for Hamming the threshold is the maximum distance
/// (finite, >= 0); for the normalized metrics (Jaccard/Dice/Cosine) it is
/// the minimum similarity, in (0, 1] — internally the join runs with
/// epsilon = 1 - threshold, since Distance() returns 1 - similarity.
struct JoinRequest {
  JoinType type = JoinType::kContainment;
  Metric metric = Metric::kHamming;
  double threshold = 0.0;
};

/// Checks the request's parameters. Returns an empty string when the
/// request is well-formed, else a human-readable reason naming the
/// offending value. ExecuteJoin() calls this at the API boundary so
/// malformed parameters surface as JoinResult::error instead of asserting
/// inside the join algorithms.
std::string ValidateJoinRequest(const JoinRequest& request);

/// The epsilon handed to the distance-based join cores: the threshold
/// itself for Hamming, 1 - threshold for the normalized metrics. Only
/// meaningful on a validated kSimilarity request.
double JoinDistanceBound(const JoinRequest& request);

/// Result of one collection-level join. The pairs themselves went to the
/// caller's sink; this carries everything else.
struct JoinResult {
  uint64_t pairs = 0;     // Pairs emitted (before any sink cancellation).
  bool truncated = false; // The sink returned false and the join stopped.
  QueryStats stats;       // Aggregate counters across both sides.
  QueryTrace trace;       // Per-join pruning trace (lockstep with stats).
  double elapsed_us = 0;  // Wall time (not compared by determinism tests).
  std::string error;      // Empty on success: set when validation fails or
                          // the backend does not support the request; the
                          // join is then never run.

  bool ok() const { return error.empty(); }
};

/// Uniform view of one join algorithm over two bound collections — the
/// collection-level sibling of IndexBackend. Concrete backends
/// (tree-vs-tree, PRETTI, FVT) live in src/join/.
class JoinBackend {
 public:
  virtual ~JoinBackend() = default;

  /// Short stable identifier ("tree", "pretti", "fvt"), used in traces,
  /// error messages, and bench labels.
  virtual const char* name() const = 0;

  /// Empty when this backend can run `request`; otherwise a one-line
  /// reason (e.g. "pretti is a containment-only join; use the tree backend
  /// for similarity joins"). ExecuteJoin() surfaces the reason as
  /// JoinResult::error instead of letting the backend assert.
  virtual std::string SupportReason(const JoinRequest& request) const = 0;

  /// Runs the validated, supported join, streaming each matching pair to
  /// `sink` in traversal order and charging counters to `ctx`. Returns
  /// false iff the sink cancelled the join early.
  virtual bool Run(const JoinRequest& request, const QueryContext& ctx,
                   JoinSink* sink) const = 0;
};

/// The single dispatch point of the join API: validates `request`, checks
/// backend support, wires a QueryContext charging the result's stats and
/// trace, runs the backend with a pair-counting wrapper around `sink`, and
/// stamps the wall time. `sink` may be null to only count pairs. On
/// validation or support failure the result carries `error` and the
/// backend is never invoked.
JoinResult ExecuteJoin(const JoinBackend& backend, const JoinRequest& request,
                       JoinSink* sink);

/// The canonical order collected joins are compared in: (tid_a, tid_b).
/// Tids are unique per side, so this is a total order on any pair set and
/// two equal collected joins are byte-identical vectors.
bool CanonicalPairLess(const JoinPair& x, const JoinPair& y);

/// Convenience wrapper: runs the join into `*pairs` (cleared first) and
/// sorts it canonically.
JoinResult CollectJoin(const JoinBackend& backend, const JoinRequest& request,
                       std::vector<JoinPair>* pairs);

/// Sink that appends every pair to a vector.
class VectorJoinSink : public JoinSink {
 public:
  explicit VectorJoinSink(std::vector<JoinPair>* out) : out_(out) {}
  bool OnPair(const JoinPair& pair) override {
    out_->push_back(pair);
    return true;
  }

 private:
  std::vector<JoinPair>* out_;
};

/// Sink that collects at most `limit` pairs, then cancels the join — the
/// CLI's preview mode and the cancellation tests use this.
class LimitJoinSink : public JoinSink {
 public:
  LimitJoinSink(std::vector<JoinPair>* out, uint64_t limit)
      : out_(out), limit_(limit) {}
  bool OnPair(const JoinPair& pair) override {
    if (out_->size() >= limit_) return false;
    out_->push_back(pair);
    return out_->size() < limit_;
  }

 private:
  std::vector<JoinPair>* out_;
  uint64_t limit_;
};

}  // namespace sgtree

#endif  // SGTREE_EXEC_JOIN_API_H_
