#ifndef SGTREE_EXEC_INDEX_BACKEND_H_
#define SGTREE_EXEC_INDEX_BACKEND_H_

#include "baseline/linear_scan.h"
#include "common/distance.h"
#include "exec/query_api.h"
#include "inverted/inverted_index.h"
#include "sgtable/sg_table.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"

namespace sgtree {

/// IndexBackend adapters for the four mutable index structures. Each one
/// replaces a per-backend overload of the old executor matrix: the mapping
/// from QueryType to the structure's native entry points lives here, once.
/// All adapters are non-owning views — the underlying index must outlive
/// the adapter — and are trivially copyable, so build them on the fly per
/// task (the sharded router constructs one per shard task). The fifth
/// backend — StaticTreeBackend over the immutable mmap'ed image, also
/// supporting all six query types — lives in static/static_tree_backend.h
/// so this layer does not depend on the static format.

/// The SG-tree: the only backend answering all six query types. Node reads
/// go through ctx.pool, so per-query random I/Os are the paper's
/// cold-cache cost when the caller clears a private pool per query.
/// `shared_bound`, when non-null, attaches the cross-partition k-NN
/// pruning bound (see SharedPruneBound in sgtree/search.h); it affects
/// only kKnn / kBestFirstKnn.
class SgTreeBackend : public IndexBackend {
 public:
  explicit SgTreeBackend(const SgTree& tree,
                         SharedPruneBound* shared_bound = nullptr)
      : tree_(&tree), shared_bound_(shared_bound) {}

  const char* name() const override { return "sgtree"; }
  std::string SupportReason(QueryType /*type*/) const override {
    return std::string();  // All six query types.
  }
  std::string JoinInputReason() const override {
    return std::string();  // SetCollection::FromTree walks the leaves.
  }
  void Run(const QueryRequest& request, const QueryContext& ctx,
           QueryResult* result) const override;

  const SgTree& tree() const { return *tree_; }

 private:
  const SgTree* tree_;
  SharedPruneBound* shared_bound_;
};

/// The SG-table baseline (Hamming only): kKnn / kBestFirstKnn via
/// KNearest, kRange via Range. The table does not index set predicates.
class SgTableBackend : public IndexBackend {
 public:
  explicit SgTableBackend(const SgTable& table) : table_(&table) {}

  const char* name() const override { return "sgtable"; }
  std::string SupportReason(QueryType type) const override {
    if (type == QueryType::kKnn || type == QueryType::kBestFirstKnn ||
        type == QueryType::kRange) {
      return std::string();
    }
    return "sgtable indexes Hamming-distance buckets only; set predicates "
           "need the sgtree, inverted, or linear_scan backend";
  }
  std::string JoinInputReason() const override {
    return "sgtable stores signature buckets, not per-transaction item "
           "sets; join from an sgtree-backed index instead";
  }
  void Run(const QueryRequest& request, const QueryContext& ctx,
           QueryResult* result) const override;

 private:
  const SgTable* table_;
};

/// The inverted-file baseline: kContainment -> Containing, kSubset ->
/// ContainedIn, k-NN types -> KNearest, kRange -> Range. Exact match needs
/// signatures, not posting lists, so kExact is unsupported.
class InvertedIndexBackend : public IndexBackend {
 public:
  explicit InvertedIndexBackend(const InvertedIndex& index)
      : index_(&index) {}

  const char* name() const override { return "inverted"; }
  std::string SupportReason(QueryType type) const override {
    if (type != QueryType::kExact) return std::string();
    return "the inverted file stores posting lists, not signatures; exact "
           "match needs the sgtree backend";
  }
  std::string JoinInputReason() const override {
    return "the inverted file stores per-item posting lists, not "
           "per-transaction item sets; join from an sgtree-backed index "
           "instead";
  }
  void Run(const QueryRequest& request, const QueryContext& ctx,
           QueryResult* result) const override;

 private:
  const InvertedIndex* index_;
};

/// The exact sequential scan — the ground-truth oracle of the test suite,
/// now reachable through the same API as the real indexes. `metric` is the
/// distance used by the k-NN and range types (the scan itself is
/// metric-agnostic). kExact is unsupported: the scan exposes no signature
/// equality entry point.
class LinearScanBackend : public IndexBackend {
 public:
  explicit LinearScanBackend(const LinearScan& scan,
                             Metric metric = Metric::kHamming)
      : scan_(&scan), metric_(metric) {}

  const char* name() const override { return "linear_scan"; }
  std::string SupportReason(QueryType type) const override {
    if (type != QueryType::kExact) return std::string();
    return "the linear scan exposes no signature-equality entry point; "
           "exact match needs the sgtree backend";
  }
  void Run(const QueryRequest& request, const QueryContext& ctx,
           QueryResult* result) const override;

 private:
  const LinearScan* scan_;
  Metric metric_;
};

}  // namespace sgtree

#endif  // SGTREE_EXEC_INDEX_BACKEND_H_
