#include "exec/query_executor.h"

#include <algorithm>
#include <utility>

#include "sgtree/search.h"
#include "storage/query_context.h"

namespace sgtree {

QueryResult ExecuteTreeQuery(const SgTree& tree, const BatchQuery& query,
                             PageCache* pool) {
  QueryResult result;
  const QueryContext ctx{pool, &result.stats};
  Timer timer;
  switch (query.type) {
    case QueryType::kKnn:
      result.neighbors = DfsKNearest(tree, query.query, query.k, ctx);
      break;
    case QueryType::kBestFirstKnn:
      result.neighbors = BestFirstKNearest(tree, query.query, query.k, ctx);
      break;
    case QueryType::kRange:
      result.neighbors = RangeSearch(tree, query.query, query.epsilon, ctx);
      break;
    case QueryType::kContainment:
      result.ids = ContainmentSearch(tree, query.query, ctx);
      break;
    case QueryType::kExact:
      result.ids = ExactSearch(tree, query.query, ctx);
      break;
    case QueryType::kSubset:
      result.ids = SubsetSearch(tree, query.query, ctx);
      break;
  }
  result.elapsed_us = timer.ElapsedMs() * 1000.0;
  return result;
}

QueryResult ExecuteTableQuery(const SgTable& table, const BatchQuery& query) {
  QueryResult result;
  Timer timer;
  switch (query.type) {
    case QueryType::kKnn:
    case QueryType::kBestFirstKnn:
      result.neighbors = table.KNearest(query.query, query.k, &result.stats);
      break;
    case QueryType::kRange:
      result.neighbors = table.Range(query.query, query.epsilon, &result.stats);
      break;
    case QueryType::kContainment:
    case QueryType::kExact:
    case QueryType::kSubset:
      break;  // The SG-table does not index set predicates.
  }
  result.elapsed_us = timer.ElapsedMs() * 1000.0;
  return result;
}

QueryResult ExecuteInvertedQuery(const InvertedIndex& index,
                                 const BatchQuery& query) {
  QueryResult result;
  Timer timer;
  const std::vector<ItemId> items = query.query.ToItems();
  switch (query.type) {
    case QueryType::kKnn:
    case QueryType::kBestFirstKnn:
      result.neighbors = index.KNearest(items, query.k, &result.stats);
      break;
    case QueryType::kRange:
      result.neighbors = index.Range(items, query.epsilon, &result.stats);
      break;
    case QueryType::kContainment:
      result.ids = index.Containing(items, &result.stats);
      break;
    case QueryType::kSubset:
      result.ids = index.ContainedIn(items, &result.stats);
      break;
    case QueryType::kExact:
      break;  // Exact match needs signatures, not posting lists.
  }
  result.elapsed_us = timer.ElapsedMs() * 1000.0;
  return result;
}

QueryExecutor::QueryExecutor(const QueryExecutorOptions& options)
    : options_(options) {
  uint32_t n = options_.num_threads;
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (options_.pool_shards > 0) {
    shared_pool_ = std::make_unique<ShardedBufferPool>(options_.buffer_pages,
                                                       options_.pool_shards);
  }
  workers_ = std::vector<Worker>(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (shared_pool_ == nullptr) {
      workers_[i].pool = std::make_unique<BufferPool>(options_.buffer_pages);
    }
    workers_[i].thread = std::thread(&QueryExecutor::WorkerLoop, this, i);
  }
}

QueryExecutor::~QueryExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (Worker& w : workers_) {
    if (w.thread.joinable()) w.thread.join();
  }
}

PageCache* QueryExecutor::PoolFor(uint32_t worker_id) {
  if (shared_pool_ != nullptr) return shared_pool_.get();
  return workers_[worker_id].pool.get();
}

void QueryExecutor::WorkerLoop(uint32_t worker_id) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(size_t, uint32_t)>* job = nullptr;
    size_t size = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || job_epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      job = job_;
      size = job_size_;
    }
    // Drain the shared cursor: each fetch_add claims one item, so the batch
    // load-balances itself regardless of per-query cost skew.
    for (;;) {
      const size_t i = next_item_.fetch_add(1, std::memory_order_relaxed);
      if (i >= size) break;
      (*job)(i, worker_id);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++workers_done_ == workers_.size()) done_cv_.notify_one();
    }
  }
}

void QueryExecutor::ParallelFor(
    size_t n, const std::function<void(size_t, uint32_t)>& fn) {
  if (n == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_size_ = n;
    next_item_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    ++job_epoch_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return workers_done_ == workers_.size(); });
  job_ = nullptr;
}

template <typename ExecuteFn>
std::vector<QueryResult> QueryExecutor::RunBatch(size_t n,
                                                 ExecuteFn&& execute) {
  // Results land in pre-sized slots by batch index; each slot is written by
  // exactly one worker, so no synchronization is needed on the vector.
  std::vector<QueryResult> results(n);
  std::vector<QueryStats> worker_stats(workers_.size());
  ParallelFor(n, [&](size_t i, uint32_t worker_id) {
    results[i] = execute(i, worker_id);
    worker_stats[worker_id] += results[i].stats;
  });
  batch_stats_ = QueryStats{};
  for (const QueryStats& s : worker_stats) batch_stats_ += s;
  return results;
}

std::vector<QueryResult> QueryExecutor::Run(
    const SgTree& tree, const std::vector<BatchQuery>& batch) {
  return RunBatch(batch.size(), [&](size_t i, uint32_t worker_id) {
    PageCache* pool = PoolFor(worker_id);
    // Private-pool mode starts every query cold, exactly like RunSerial and
    // the paper's per-query I/O measurements; the shared sharded pool stays
    // warm across the whole batch instead.
    if (shared_pool_ == nullptr) pool->Clear();
    return ExecuteTreeQuery(tree, batch[i], pool);
  });
}

std::vector<QueryResult> QueryExecutor::Run(
    const SgTable& table, const std::vector<BatchQuery>& batch) {
  return RunBatch(batch.size(), [&](size_t i, uint32_t /*worker_id*/) {
    return ExecuteTableQuery(table, batch[i]);
  });
}

std::vector<QueryResult> QueryExecutor::Run(
    const InvertedIndex& index, const std::vector<BatchQuery>& batch) {
  return RunBatch(batch.size(), [&](size_t i, uint32_t /*worker_id*/) {
    return ExecuteInvertedQuery(index, batch[i]);
  });
}

std::vector<QueryResult> QueryExecutor::RunSerial(
    const SgTree& tree, const std::vector<BatchQuery>& batch,
    uint32_t buffer_pages) {
  BufferPool pool(buffer_pages);
  std::vector<QueryResult> results;
  results.reserve(batch.size());
  for (const BatchQuery& query : batch) {
    pool.Clear();
    results.push_back(ExecuteTreeQuery(tree, query, &pool));
  }
  return results;
}

}  // namespace sgtree
