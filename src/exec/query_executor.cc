#include "exec/query_executor.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "exec/query_api.h"

namespace sgtree {

QueryResult ExecuteTreeQuery(const SgTree& tree, const BatchQuery& query,
                             PageCache* pool) {
  return Execute(SgTreeBackend(tree), query, pool);
}

QueryResult ExecuteTableQuery(const SgTable& table, const BatchQuery& query) {
  return Execute(SgTableBackend(table), query);
}

QueryResult ExecuteInvertedQuery(const InvertedIndex& index,
                                 const BatchQuery& query) {
  return Execute(InvertedIndexBackend(index), query);
}

QueryExecutor::QueryExecutor(const QueryExecutorOptions& options)
    : options_(options) {
  uint32_t n = options_.num_threads;
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  if (options_.pool_shards > 0) {
    shared_pool_ = std::make_unique<ShardedBufferPool>(options_.buffer_pages,
                                                       options_.pool_shards);
  }
  workers_ = std::vector<Worker>(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (shared_pool_ == nullptr) {
      workers_[i].pool = std::make_unique<BufferPool>(options_.buffer_pages);
    }
    workers_[i].thread = std::thread(&QueryExecutor::WorkerLoop, this, i);
  }
}

QueryExecutor::~QueryExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (Worker& w : workers_) {
    if (w.thread.joinable()) w.thread.join();
  }
}

PageCache* QueryExecutor::PoolFor(uint32_t worker_id) {
  if (shared_pool_ != nullptr) return shared_pool_.get();
  return workers_[worker_id].pool.get();
}

void QueryExecutor::WorkerLoop(uint32_t worker_id) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(size_t, uint32_t)>* job = nullptr;
    size_t size = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return shutdown_ || job_epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      job = job_;
      size = job_size_;
    }
    // Drain the shared cursor: each fetch_add claims one item, so the batch
    // load-balances itself regardless of per-query cost skew.
    for (;;) {
      const size_t i = next_item_.fetch_add(1, std::memory_order_relaxed);
      if (i >= size) break;
      (*job)(i, worker_id);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++workers_done_ == workers_.size()) done_cv_.notify_one();
    }
  }
}

void QueryExecutor::ParallelFor(
    size_t n, const std::function<void(size_t, uint32_t)>& fn) {
  if (n == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_size_ = n;
    next_item_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    ++job_epoch_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return workers_done_ == workers_.size(); });
  job_ = nullptr;
}

namespace {

// Nearest-rank percentile over per-query wall times; `sorted_us` ascending.
double PercentileUs(const std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const double frac = p / 100.0 * static_cast<double>(sorted_us.size());
  size_t rank = static_cast<size_t>(std::ceil(frac));
  if (rank < 1) rank = 1;
  if (rank > sorted_us.size()) rank = sorted_us.size();
  return sorted_us[rank - 1];
}

}  // namespace

template <typename ExecuteFn>
std::vector<QueryResult> QueryExecutor::RunBatch(size_t n,
                                                 ExecuteFn&& execute) {
  // Results land in pre-sized slots by batch index; each slot is written by
  // exactly one worker, so no synchronization is needed on the vector.
  std::vector<QueryResult> results(n);
  std::vector<QueryStats> worker_stats(workers_.size());
  std::vector<QueryTrace> worker_traces(workers_.size());
  Timer batch_timer;
  ParallelFor(n, [&](size_t i, uint32_t worker_id) {
    results[i] = execute(i, worker_id);
    worker_stats[worker_id] += results[i].stats;
    worker_traces[worker_id] += results[i].trace;
  });
  batch_report_ = BatchReport{};
  batch_report_.queries = n;
  batch_report_.wall_ms = batch_timer.ElapsedMs();
  batch_stats_ = QueryStats{};
  for (const QueryStats& s : worker_stats) batch_stats_ += s;
  for (const QueryTrace& t : worker_traces) batch_report_.trace += t;
  batch_report_.stats = batch_stats_;

  std::vector<double> latencies;
  latencies.reserve(n);
  for (const QueryResult& r : results) latencies.push_back(r.elapsed_us);
  std::sort(latencies.begin(), latencies.end());
  batch_report_.p50_us = PercentileUs(latencies, 50);
  batch_report_.p95_us = PercentileUs(latencies, 95);
  batch_report_.p99_us = PercentileUs(latencies, 99);

  if (options_.metrics != nullptr) {
    // Registry feeding happens once per batch on the calling thread: the
    // counters advance by the batch totals and the latency histogram gets
    // one sample per query.
    obs::MetricsRegistry& reg = *options_.metrics;
    reg.GetCounter("exec.queries")->Increment(n);
    reg.GetCounter("exec.nodes_visited")
        ->Increment(batch_report_.trace.nodes_visited());
    reg.GetCounter("exec.random_ios")->Increment(batch_stats_.random_ios);
    reg.GetCounter("exec.signatures_tested")
        ->Increment(batch_report_.trace.signatures_tested);
    reg.GetCounter("exec.subtrees_pruned")
        ->Increment(batch_report_.trace.subtrees_pruned);
    reg.GetCounter("exec.candidates_verified")
        ->Increment(batch_report_.trace.candidates_verified);
    reg.GetCounter("exec.results")->Increment(batch_report_.trace.results);
    obs::Histogram* latency = reg.GetHistogram("exec.query_latency_us");
    for (const double us : latencies) latency->Observe(us);
  }
  return results;
}

std::vector<QueryResult> QueryExecutor::Run(
    const IndexBackend& backend, const std::vector<QueryRequest>& batch) {
  return RunBatch(batch.size(), [&](size_t i, uint32_t worker_id) {
    PageCache* pool = PoolFor(worker_id);
    // Private-pool mode starts every query cold, exactly like RunSerial and
    // the paper's per-query I/O measurements; the shared sharded pool stays
    // warm across the whole batch instead. Backends that do no paged I/O
    // (table / inverted / scan) simply never touch the pool.
    if (shared_pool_ == nullptr) pool->Clear();
    return Execute(backend, batch[i], pool);
  });
}

std::vector<QueryResult> QueryExecutor::Run(
    const SgTree& tree, const std::vector<BatchQuery>& batch) {
  return Run(SgTreeBackend(tree), batch);
}

std::vector<QueryResult> QueryExecutor::Run(
    const SgTable& table, const std::vector<BatchQuery>& batch) {
  return Run(SgTableBackend(table), batch);
}

std::vector<QueryResult> QueryExecutor::Run(
    const InvertedIndex& index, const std::vector<BatchQuery>& batch) {
  return Run(InvertedIndexBackend(index), batch);
}

std::vector<QueryResult> QueryExecutor::RunSerial(
    const SgTree& tree, const std::vector<BatchQuery>& batch,
    uint32_t buffer_pages) {
  BufferPool pool(buffer_pages);
  std::vector<QueryResult> results;
  results.reserve(batch.size());
  for (const BatchQuery& query : batch) {
    pool.Clear();
    results.push_back(ExecuteTreeQuery(tree, query, &pool));
  }
  return results;
}

}  // namespace sgtree
