#include "exec/query_executor.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "exec/query_api.h"
#include "obs/percentile.h"

namespace sgtree {

QueryResult ExecuteTreeQuery(const SgTree& tree, const BatchQuery& query,
                             PageCache* pool) {
  return Execute(SgTreeBackend(tree), query, pool);
}

QueryResult ExecuteTableQuery(const SgTable& table, const BatchQuery& query) {
  return Execute(SgTableBackend(table), query);
}

QueryResult ExecuteInvertedQuery(const InvertedIndex& index,
                                 const BatchQuery& query) {
  return Execute(InvertedIndexBackend(index), query);
}

namespace {

// The queue word packs (next unclaimed index, one-past-last) into one CAS
// target. 32 bits each: a single fan-out is bounded far below 4G items.
constexpr uint64_t Pack(size_t pos, size_t end) {
  return (static_cast<uint64_t>(pos) << 32) | static_cast<uint64_t>(end);
}
constexpr size_t PackedPos(uint64_t word) {
  return static_cast<size_t>(word >> 32);
}
constexpr size_t PackedEnd(uint64_t word) {
  return static_cast<size_t>(word & 0xffffffffu);
}

// Claims up to `chunk` items from the front of `queue`. Returns false when
// the queue is empty.
bool ClaimChunk(std::atomic<uint64_t>& queue, size_t chunk, size_t* begin,
                size_t* end) {
  uint64_t cur = queue.load(std::memory_order_relaxed);
  for (;;) {
    const size_t pos = PackedPos(cur);
    const size_t limit = PackedEnd(cur);
    if (pos >= limit) return false;
    const size_t take = std::min(chunk, limit - pos);
    if (queue.compare_exchange_weak(cur, Pack(pos + take, limit),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      *begin = pos;
      *end = pos + take;
      return true;
    }
  }
}

// Splits off the tail half of `queue` for a thief. Returns false when there
// is nothing left to steal.
bool StealHalf(std::atomic<uint64_t>& queue, size_t* begin, size_t* end) {
  uint64_t cur = queue.load(std::memory_order_relaxed);
  for (;;) {
    const size_t pos = PackedPos(cur);
    const size_t limit = PackedEnd(cur);
    if (pos >= limit) return false;
    const size_t take = (limit - pos + 1) / 2;
    if (queue.compare_exchange_weak(cur, Pack(pos, limit - take),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      *begin = limit - take;
      *end = limit;
      return true;
    }
  }
}

}  // namespace

QueryExecutor::QueryExecutor(const QueryExecutorOptions& options)
    : options_(options) {
  uint32_t n = options_.num_threads;
  if (n == 0) n = std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  num_lanes_ = n;
  queues_ = std::make_unique<TaskQueue[]>(num_lanes_);
  if (options_.pool_shards > 0) {
    shared_pool_ = std::make_unique<ShardedBufferPool>(options_.buffer_pages,
                                                       options_.pool_shards);
  } else {
    pools_.reserve(num_lanes_);
    for (uint32_t i = 0; i < num_lanes_; ++i) {
      pools_.push_back(std::make_unique<BufferPool>(options_.buffer_pages));
    }
  }
  threads_.reserve(num_lanes_ - 1);
  for (uint32_t i = 0; i + 1 < num_lanes_; ++i) {
    threads_.emplace_back(&QueryExecutor::WorkerLoop, this, i);
  }
}

QueryExecutor::~QueryExecutor() {
  shutdown_.store(true, std::memory_order_release);
  // The epoch word itself must change: atomic::wait re-checks the value on
  // wake-up and parks again if it is unchanged, so notify alone would leave
  // workers asleep. The release bump also publishes the shutdown store.
  job_epoch_.fetch_add(1, std::memory_order_release);
  job_epoch_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

PageCache* QueryExecutor::PoolFor(uint32_t worker_id) {
  if (shared_pool_ != nullptr) return shared_pool_.get();
  return pools_[worker_id].get();
}

void QueryExecutor::WorkerLoop(uint32_t worker_id) {
  uint64_t seen_epoch = 0;
  for (;;) {
    // Park on the epoch word (futex wait) until a new job is published or
    // shutdown is requested. wait() may return spuriously; the loop
    // re-checks both conditions.
    uint64_t epoch = job_epoch_.load(std::memory_order_acquire);
    while (epoch == seen_epoch && !shutdown_.load(std::memory_order_acquire)) {
      job_epoch_.wait(epoch, std::memory_order_acquire);
      epoch = job_epoch_.load(std::memory_order_acquire);
    }
    if (shutdown_.load(std::memory_order_relaxed)) return;
    seen_epoch = epoch;
    Participate(worker_id);
    if (pending_lanes_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      pending_lanes_.notify_all();
    }
  }
}

void QueryExecutor::Participate(uint32_t worker_id) {
  const RangeFn fn = job_fn_;
  void* ctx = job_ctx_;
  const size_t chunk = job_chunk_;
  size_t begin = 0;
  size_t end = 0;
  for (;;) {
    // Drain our own range chunk by chunk: one uncontended CAS claims a
    // whole run of items for the typed trampoline.
    while (ClaimChunk(queues_[worker_id].range, chunk, &begin, &end)) {
      fn(ctx, begin, end, worker_id);
    }
    // Out of local work: steal the tail half of the first non-empty queue
    // and install it as our own, so other thieves can split it further.
    bool stole = false;
    for (uint32_t step = 1; step < num_lanes_ && !stole; ++step) {
      const uint32_t victim = (worker_id + step) % num_lanes_;
      if (StealHalf(queues_[victim].range, &begin, &end)) {
        queues_[worker_id].range.store(Pack(begin, end),
                                       std::memory_order_release);
        stole = true;
      }
    }
    if (!stole) return;  // Every queue is empty: the job is fully claimed.
  }
}

void QueryExecutor::RunRanges(size_t n, RangeFn fn, void* ctx) {
  if (n == 0) return;
  SGTREE_ASSERT_MSG(n <= 0xffffffffu, "fan-out larger than 2^32 items");
  const uint32_t lanes = num_lanes_;
  // Contiguous per-lane ranges: lane i owns ~n/lanes items. Contiguity
  // keeps a lane's claims adjacent (cache-friendly result slots) and makes
  // the no-steal schedule deterministic.
  const size_t base = n / lanes;
  const size_t extra = n % lanes;
  size_t next = 0;
  for (uint32_t i = 0; i < lanes; ++i) {
    const size_t len = base + (i < extra ? 1 : 0);
    queues_[i].range.store(Pack(next, next + len), std::memory_order_relaxed);
    next += len;
  }
  job_fn_ = fn;
  job_ctx_ = ctx;
  if (options_.max_chunk > 0) {
    job_chunk_ = options_.max_chunk;
  } else {
    // Auto sizing: ~8 claims per lane over its own range amortizes the CAS
    // without starving thieves; the cap keeps one claim from monopolizing
    // a heavily skewed tail.
    job_chunk_ = std::clamp<size_t>(n / (static_cast<size_t>(lanes) * 8), 1,
                                    64);
  }
  const uint32_t spawned = lanes - 1;
  pending_lanes_.store(spawned, std::memory_order_relaxed);
  job_epoch_.fetch_add(1, std::memory_order_release);
  if (spawned > 0) job_epoch_.notify_all();

  // The calling thread is the last lane: it executes work instead of
  // blocking, then waits (futex) only for straggling spawned lanes.
  Participate(lanes - 1);
  uint32_t left = pending_lanes_.load(std::memory_order_acquire);
  while (left != 0) {
    pending_lanes_.wait(left, std::memory_order_acquire);
    left = pending_lanes_.load(std::memory_order_acquire);
  }
}

void QueryExecutor::ParallelFor(
    size_t n, const std::function<void(size_t, uint32_t)>& fn) {
  ParallelApply(n, [&fn](size_t i, uint32_t worker_id) { fn(i, worker_id); });
}

template <typename ExecuteFn>
std::vector<QueryResult> QueryExecutor::RunBatch(size_t n,
                                                 ExecuteFn&& execute) {
  // Results land in pre-sized slots by batch index; each slot is written by
  // exactly one lane, so no synchronization is needed on the vector.
  std::vector<QueryResult> results(n);
  std::vector<QueryStats> lane_stats(num_lanes_);
  std::vector<QueryTrace> lane_traces(num_lanes_);
  Timer batch_timer;
  ParallelApply(n, [&](size_t i, uint32_t worker_id) {
    results[i] = execute(i, worker_id);
    lane_stats[worker_id] += results[i].stats;
    lane_traces[worker_id] += results[i].trace;
  });
  batch_report_ = BatchReport{};
  batch_report_.queries = n;
  batch_report_.wall_ms = batch_timer.ElapsedMs();
  batch_stats_ = QueryStats{};
  for (const QueryStats& s : lane_stats) batch_stats_ += s;
  for (const QueryTrace& t : lane_traces) batch_report_.trace += t;
  batch_report_.stats = batch_stats_;

  // Rejected requests never ran: they are counted separately and excluded
  // from the latency sample (their elapsed_us is 0 by construction).
  std::vector<double> latencies;
  latencies.reserve(n);
  for (const QueryResult& r : results) {
    if (r.ok()) {
      latencies.push_back(r.elapsed_us);
      batch_report_.task_us += r.elapsed_us;
    } else {
      ++batch_report_.rejected;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  batch_report_.p50_us = obs::NearestRankPercentile(latencies, 50);
  batch_report_.p95_us = obs::NearestRankPercentile(latencies, 95);
  batch_report_.p99_us = obs::NearestRankPercentile(latencies, 99);

  if (options_.metrics != nullptr) {
    // Registry feeding happens once per batch on the calling thread: the
    // counters advance by the batch totals and the latency histogram gets
    // one sample per executed query.
    obs::MetricsRegistry& reg = *options_.metrics;
    reg.GetCounter("exec.queries")->Increment(n);
    reg.GetCounter("exec.rejected")->Increment(batch_report_.rejected);
    reg.GetCounter("exec.nodes_visited")
        ->Increment(batch_report_.trace.nodes_visited());
    reg.GetCounter("exec.random_ios")->Increment(batch_stats_.random_ios);
    reg.GetCounter("exec.signatures_tested")
        ->Increment(batch_report_.trace.signatures_tested);
    reg.GetCounter("exec.subtrees_pruned")
        ->Increment(batch_report_.trace.subtrees_pruned);
    reg.GetCounter("exec.candidates_verified")
        ->Increment(batch_report_.trace.candidates_verified);
    reg.GetCounter("exec.results")->Increment(batch_report_.trace.results);
    obs::Histogram* latency = reg.GetHistogram("exec.query_latency_us");
    for (const double us : latencies) latency->Observe(us);
  }
  return results;
}

std::vector<QueryResult> QueryExecutor::Run(
    const IndexBackend& backend, const std::vector<QueryRequest>& batch) {
  return RunBatch(batch.size(), [&](size_t i, uint32_t worker_id) {
    PageCache* pool = PoolFor(worker_id);
    // Private-pool mode starts every query cold, exactly like RunSerial and
    // the paper's per-query I/O measurements; the shared sharded pool stays
    // warm across the whole batch instead. Backends that do no paged I/O
    // (table / inverted / scan) simply never touch the pool.
    if (shared_pool_ == nullptr) pool->Clear();
    return Execute(backend, batch[i], pool);
  });
}

std::vector<QueryResult> QueryExecutor::Run(
    const SgTree& tree, const std::vector<BatchQuery>& batch) {
  return Run(SgTreeBackend(tree), batch);
}

std::vector<QueryResult> QueryExecutor::Run(
    const SgTable& table, const std::vector<BatchQuery>& batch) {
  return Run(SgTableBackend(table), batch);
}

std::vector<QueryResult> QueryExecutor::Run(
    const InvertedIndex& index, const std::vector<BatchQuery>& batch) {
  return Run(InvertedIndexBackend(index), batch);
}

std::vector<QueryResult> QueryExecutor::RunSerial(
    const SgTree& tree, const std::vector<BatchQuery>& batch,
    uint32_t buffer_pages) {
  BufferPool pool(buffer_pages);
  std::vector<QueryResult> results;
  results.reserve(batch.size());
  for (const BatchQuery& query : batch) {
    pool.Clear();
    results.push_back(Execute(SgTreeBackend(tree), query, &pool));
  }
  return results;
}

}  // namespace sgtree
