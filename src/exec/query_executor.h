#ifndef SGTREE_EXEC_QUERY_EXECUTOR_H_
#define SGTREE_EXEC_QUERY_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "baseline/linear_scan.h"
#include "common/signature.h"
#include "common/stats.h"
#include "exec/index_backend.h"
#include "exec/query_api.h"
#include "inverted/inverted_index.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "sgtable/sg_table.h"
#include "sgtree/sg_tree.h"
#include "storage/buffer_pool.h"
#include "storage/sharded_buffer_pool.h"

namespace sgtree {

// QueryType / QueryRequest (aka BatchQuery) / QueryResult moved to
// exec/query_api.h — the executor is now one consumer of the unified query
// API among several (router, CLI, benches).

/// Aggregate view of the last batch: counter totals reduced from the
/// per-worker accumulators plus exact latency percentiles over the batch's
/// per-query wall times.
struct BatchReport {
  uint64_t queries = 0;
  double wall_ms = 0;    // Wall time of the whole batch.
  QueryStats stats;      // Sum of per-query QueryStats.
  QueryTrace trace;      // Sum of per-query QueryTrace.
  double p50_us = 0;     // Exact percentiles of per-query elapsed_us
  double p95_us = 0;     // (nearest-rank); 0 when the batch was empty.
  double p99_us = 0;
};

struct QueryExecutorOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  uint32_t num_threads = 0;

  /// Buffer frames for I/O accounting: the capacity of each worker's
  /// private pool, or the total capacity of the shared sharded pool.
  uint32_t buffer_pages = 64;

  /// 0 (default): every worker owns a private BufferPool that is cleared
  /// before each query — per-query random I/Os are the cold-cache cost the
  /// paper measures, independent of scheduling, so parallel output is
  /// byte-identical to the serial path.
  ///
  /// > 0: all workers share one ShardedBufferPool with this many lock
  /// stripes. Queries then warm the cache for each other (higher QPS,
  /// matching a production server with one buffer manager), at the price of
  /// schedule-dependent per-query I/O counts. Result values are unaffected.
  uint32_t pool_shards = 0;

  /// Optional metrics sink. When set, every batch feeds the registry's
  /// "exec.*" counters (queries, nodes, I/Os, verifications, pruned
  /// subtrees) and the "exec.query_latency_us" histogram — one Observe per
  /// query, performed on the calling thread after the fan-out, so workers
  /// never touch the registry. The pools' cache counters can additionally
  /// be bound via BufferPool::BindMetrics on the same registry.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Fixed-size worker-pool executor for query batches (the ROADMAP's
/// "serving heavy traffic" path). Threads are started once at construction
/// and parked on a condition variable between batches; Run() fans a batch
/// out over them with an atomic work-stealing cursor and returns results in
/// input order. Per-query counters accumulate into per-worker QueryStats
/// and are reduced into batch_stats() at batch end — no shared counter is
/// written from two threads.
///
/// The index structures are taken by const reference: queries never mutate
/// them (see QueryContext), which is the invariant making the fan-out
/// sound. Do not run a batch concurrently with inserts/erases on the same
/// tree.
class QueryExecutor {
 public:
  explicit QueryExecutor(const QueryExecutorOptions& options = {});
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Runs a batch against any backend of the unified query API. Each query
  /// goes through Execute() (validation included) with the worker's pool;
  /// in private-pool mode the pool is cleared before every query, so
  /// results are byte-identical to the serial path. This is THE fan-out
  /// entry point; the typed overloads below are thin adapter wrappers.
  std::vector<QueryResult> Run(const IndexBackend& backend,
                               const std::vector<QueryRequest>& batch);

  /// Runs a batch against the SG-tree; all query types are supported.
  /// Wrapper over Run(SgTreeBackend(tree), batch).
  std::vector<QueryResult> Run(const SgTree& tree,
                               const std::vector<BatchQuery>& batch);

  /// Runs a batch against the SG-table baseline (Hamming only; see
  /// SgTableBackend). Wrapper over the generic Run.
  std::vector<QueryResult> Run(const SgTable& table,
                               const std::vector<BatchQuery>& batch);

  /// Runs a batch against the inverted-file baseline (see
  /// InvertedIndexBackend). Wrapper over the generic Run.
  std::vector<QueryResult> Run(const InvertedIndex& index,
                               const std::vector<BatchQuery>& batch);

  /// Serial reference: executes the batch on the calling thread with one
  /// private pool cleared per query — the exact semantics of the
  /// private-pool parallel mode, so Run(tree, batch) == RunSerial(...) for
  /// any thread count. This is the oracle the determinism tests compare
  /// against.
  static std::vector<QueryResult> RunSerial(const SgTree& tree,
                                            const std::vector<BatchQuery>& batch,
                                            uint32_t buffer_pages = 64);

  /// Low-level fan-out: invokes fn(index, worker_id) for every index in
  /// [0, n), load-balanced across the worker pool. worker_id < max(1,
  /// num_threads()) and is stable within one callback. Blocks until all n
  /// are done. Not reentrant.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, uint32_t)>& fn);

  /// Aggregate counters of the last Run(), reduced from the per-worker
  /// accumulators.
  const QueryStats& batch_stats() const { return batch_stats_; }

  /// Full report of the last Run(): counter + trace totals and latency
  /// percentiles. Valid until the next Run()/destruction.
  const BatchReport& last_batch_report() const { return batch_report_; }

  /// The shared pool (null in private-pool mode); its per-shard stats
  /// snapshot is the batch's global I/O picture.
  const ShardedBufferPool* shared_pool() const { return shared_pool_.get(); }
  ShardedBufferPool* shared_pool() { return shared_pool_.get(); }

 private:
  void WorkerLoop(uint32_t worker_id);

  /// Pool worker `worker_id` charges queries against: its private
  /// BufferPool, or the shared ShardedBufferPool when sharding is on. A
  /// buffer_pages of 0 gives capacity-0 private pools that miss on every
  /// access — the "no buffer" accounting mode.
  PageCache* PoolFor(uint32_t worker_id);

  /// Runs `batch` by fanning `execute(i, pool)` results into slot i,
  /// reducing per-worker stats at the end.
  template <typename ExecuteFn>
  std::vector<QueryResult> RunBatch(size_t n, ExecuteFn&& execute);

  QueryExecutorOptions options_;

  struct Worker {
    std::thread thread;
    std::unique_ptr<BufferPool> pool;  // Private-pool mode only.
  };
  std::vector<Worker> workers_;
  std::unique_ptr<ShardedBufferPool> shared_pool_;

  // Batch hand-off: workers park on work_cv_ until job_epoch_ advances,
  // then drain next_item_ and report through workers_done_ / done_cv_.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(size_t, uint32_t)>* job_ = nullptr;  // Guarded.
  size_t job_size_ = 0;                                         // Guarded.
  uint64_t job_epoch_ = 0;                                      // Guarded.
  size_t workers_done_ = 0;                                     // Guarded.
  bool shutdown_ = false;                                       // Guarded.
  std::atomic<size_t> next_item_{0};

  QueryStats batch_stats_;
  BatchReport batch_report_;
};

/// LEGACY single-query kernels, now thin wrappers over Execute() with the
/// matching exec/index_backend.h adapter. Kept for old tests and harnesses;
/// new code should construct the adapter and call Execute() directly.
QueryResult ExecuteTreeQuery(const SgTree& tree, const BatchQuery& query,
                             PageCache* pool);
QueryResult ExecuteTableQuery(const SgTable& table, const BatchQuery& query);
QueryResult ExecuteInvertedQuery(const InvertedIndex& index,
                                 const BatchQuery& query);

}  // namespace sgtree

#endif  // SGTREE_EXEC_QUERY_EXECUTOR_H_
