#ifndef SGTREE_EXEC_QUERY_EXECUTOR_H_
#define SGTREE_EXEC_QUERY_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "baseline/linear_scan.h"
#include "common/signature.h"
#include "common/stats.h"
#include "exec/index_backend.h"
#include "exec/query_api.h"
#include "inverted/inverted_index.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "sgtable/sg_table.h"
#include "sgtree/sg_tree.h"
#include "storage/buffer_pool.h"
#include "storage/sharded_buffer_pool.h"

namespace sgtree {

// QueryType / QueryRequest (aka BatchQuery) / QueryResult moved to
// exec/query_api.h — the executor is now one consumer of the unified query
// API among several (router, CLI, benches).

/// Aggregate view of the last batch: counter totals reduced from the
/// per-worker accumulators plus exact latency percentiles over the batch's
/// per-query wall times.
struct BatchReport {
  uint64_t queries = 0;  // All requests in the batch, valid or not.
  uint64_t rejected = 0; // Requests that failed validation. Rejected
                         // requests contribute no latency sample and no
                         // counters — only `queries` counts them.
  double wall_ms = 0;    // Wall time of the whole batch.
  double task_us = 0;    // Total backend service time: the sum of every
                         // executed task's elapsed_us (per query here; per
                         // (query, shard) part in the sharded router).
                         // task_us / (wall_ms * 1000 * cores) is the
                         // core-independent dispatch efficiency the shard
                         // bench gates on.
  QueryStats stats;      // Sum of per-query QueryStats.
  QueryTrace trace;      // Sum of per-query QueryTrace.
  double p50_us = 0;     // Exact percentiles of per-query elapsed_us
  double p95_us = 0;     // (nearest-rank); 0 when the batch was empty.
  double p99_us = 0;
};

struct QueryExecutorOptions {
  /// Total execution lanes, including the calling thread: the executor
  /// spawns num_threads - 1 workers and the thread calling Run/ParallelFor
  /// participates as the last lane instead of blocking. 0 =
  /// std::thread::hardware_concurrency().
  uint32_t num_threads = 0;

  /// Buffer frames for I/O accounting: the capacity of each lane's
  /// private pool, or the total capacity of the shared sharded pool.
  uint32_t buffer_pages = 64;

  /// 0 (default): every lane owns a private BufferPool that is cleared
  /// before each query — per-query random I/Os are the cold-cache cost the
  /// paper measures, independent of scheduling, so parallel output is
  /// byte-identical to the serial path.
  ///
  /// > 0: all lanes share one ShardedBufferPool with this many lock
  /// stripes. Queries then warm the cache for each other (higher QPS,
  /// matching a production server with one buffer manager), at the price of
  /// schedule-dependent per-query I/O counts. Result values are unaffected.
  uint32_t pool_shards = 0;

  /// Upper bound on how many items one range claim takes at once. 0 picks
  /// an automatic size from the batch and lane count; 1 degenerates to the
  /// old one-atomic-RMW-per-item scheduling (kept as the ablation
  /// baseline of bench_shard_scaling). Results are identical for any
  /// value — chunking only changes who runs what.
  uint32_t max_chunk = 0;

  /// Optional metrics sink. When set, every batch feeds the registry's
  /// "exec.*" counters (queries, rejected, nodes, I/Os, verifications,
  /// pruned subtrees) and the "exec.query_latency_us" histogram — one
  /// Observe per query, performed on the calling thread after the fan-out,
  /// so workers never touch the registry. The pools' cache counters can
  /// additionally be bound via BufferPool::BindMetrics on the same
  /// registry.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Worker-pool executor for query batches (the ROADMAP's "serving heavy
/// traffic" path), rebuilt for dispatch throughput:
///
///  - Work distribution is chunked range claiming, not an atomic RMW per
///    item: [0, n) is pre-split into one contiguous range per lane, each
///    lane claims chunks from its own range with a single-word CAS, and a
///    lane that runs dry steals the tail half of the largest remainder it
///    finds — per-(query,shard)-task skew load-balances without a shared
///    cursor every task bounces through.
///  - The calling thread is a lane: Run()/ParallelFor execute work on the
///    caller instead of parking it on a condition variable, so
///    `num_threads = N` means N lanes, N-1 spawned threads.
///  - Batch hand-off is an epoch rendezvous on C++20 atomic wait/notify
///    (futex-backed on Linux): workers sleep on the epoch word between
///    batches and one release-increment publishes the next job — no mutex,
///    no condvar broadcast storm.
///  - The hot loop is devirtualized: jobs run as a raw function pointer
///    over a claimed [begin, end) range (see ParallelApply), so the typed
///    task body is invoked directly per item instead of through a
///    std::function per item.
///
/// Threads are started once at construction. Per-query counters accumulate
/// into per-lane QueryStats and are reduced into batch_stats() at batch
/// end — no shared counter is written from two threads.
///
/// The index structures are taken by const reference: queries never mutate
/// them (see QueryContext), which is the invariant making the fan-out
/// sound. Do not run a batch concurrently with inserts/erases on the same
/// tree; ParallelFor/ParallelApply/Run are not reentrant.
class QueryExecutor {
 public:
  /// Job entry: runs items [begin, end) of the current job on lane
  /// `worker_id`. `ctx` is the caller's typed closure.
  using RangeFn = void (*)(void* ctx, size_t begin, size_t end,
                           uint32_t worker_id);

  explicit QueryExecutor(const QueryExecutorOptions& options = {});
  ~QueryExecutor();

  QueryExecutor(const QueryExecutor&) = delete;
  QueryExecutor& operator=(const QueryExecutor&) = delete;

  /// Total lanes (spawned workers + the calling thread). worker_id passed
  /// to job bodies is always < num_threads().
  uint32_t num_threads() const { return num_lanes_; }

  /// Runs a batch against any backend of the unified query API. Each query
  /// goes through Execute() (validation included) with the lane's pool;
  /// in private-pool mode the pool is cleared before every query, so
  /// results are byte-identical to the serial path. This is THE fan-out
  /// entry point; the typed overloads below are thin adapter wrappers.
  std::vector<QueryResult> Run(const IndexBackend& backend,
                               const std::vector<QueryRequest>& batch);

  /// LEGACY typed overload; wrapper over Run(SgTreeBackend(tree), batch).
  [[deprecated(
      "legacy typed overload; call Run(SgTreeBackend(tree), batch). Removal schedule: DESIGN.md section 11.4")]]
  std::vector<QueryResult> Run(const SgTree& tree,
                               const std::vector<BatchQuery>& batch);

  /// LEGACY typed overload; wrapper over Run(SgTableBackend(table), batch).
  [[deprecated(
      "legacy typed overload; call Run(SgTableBackend(table), batch). Removal schedule: DESIGN.md section 11.4")]]
  std::vector<QueryResult> Run(const SgTable& table,
                               const std::vector<BatchQuery>& batch);

  /// LEGACY typed overload; wrapper over
  /// Run(InvertedIndexBackend(index), batch).
  [[deprecated(
      "legacy typed overload; call Run(InvertedIndexBackend(index), batch). Removal schedule: DESIGN.md section 11.4")]]
  std::vector<QueryResult> Run(const InvertedIndex& index,
                               const std::vector<BatchQuery>& batch);

  /// Serial reference: executes the batch on the calling thread with one
  /// private pool cleared per query — the exact semantics of the
  /// private-pool parallel mode, so Run(tree, batch) == RunSerial(...) for
  /// any thread count. This is the oracle the determinism tests compare
  /// against.
  static std::vector<QueryResult> RunSerial(const SgTree& tree,
                                            const std::vector<BatchQuery>& batch,
                                            uint32_t buffer_pages = 64);

  /// Typed fan-out: invokes body(index, worker_id) for every index in
  /// [0, n), load-balanced across the lanes with chunked claiming and
  /// work stealing. The body is called through a per-type trampoline that
  /// runs whole claimed ranges, so there is no per-item type erasure.
  /// Blocks until all n are done (the caller works, it does not wait).
  /// Not reentrant.
  template <typename Body>
  void ParallelApply(size_t n, Body&& body) {
    using Decayed = std::remove_reference_t<Body>;
    RangeFn trampoline = [](void* ctx, size_t begin, size_t end,
                            uint32_t worker_id) {
      Decayed& fn = *static_cast<Decayed*>(ctx);
      for (size_t i = begin; i < end; ++i) fn(i, worker_id);
    };
    RunRanges(n, trampoline, const_cast<void*>(static_cast<const void*>(
                                 std::addressof(body))));
  }

  /// Type-erased fan-out kept for callers that already hold a
  /// std::function; pays one indirect call per item on top of the chunked
  /// scheduler. Prefer ParallelApply in hot paths.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, uint32_t)>& fn);

  /// Aggregate counters of the last Run(), reduced from the per-lane
  /// accumulators.
  const QueryStats& batch_stats() const { return batch_stats_; }

  /// Full report of the last Run(): counter + trace totals and latency
  /// percentiles. Valid until the next Run()/destruction.
  const BatchReport& last_batch_report() const { return batch_report_; }

  /// The shared pool (null in private-pool mode); its per-shard stats
  /// snapshot is the batch's global I/O picture.
  const ShardedBufferPool* shared_pool() const { return shared_pool_.get(); }
  ShardedBufferPool* shared_pool() { return shared_pool_.get(); }

 private:
  /// One lane's claimable range, a single CAS word so owner claims and
  /// thief splits are linearizable against each other: high 32 bits = next
  /// unclaimed index, low 32 bits = one past the last. Cache-line aligned
  /// so lanes never false-share their queue words.
  struct alignas(64) TaskQueue {
    std::atomic<uint64_t> range{0};
  };

  /// Core of the fan-out: partitions [0, n), publishes (fn, ctx) to the
  /// spawned lanes via the epoch word, participates on the calling thread,
  /// then waits for stragglers on the pending-lane count.
  void RunRanges(size_t n, RangeFn fn, void* ctx);

  void WorkerLoop(uint32_t worker_id);

  /// Claim-execute-steal loop of one lane for the current job.
  void Participate(uint32_t worker_id);

  /// Pool lane `worker_id` charges queries against: its private
  /// BufferPool, or the shared ShardedBufferPool when sharding is on. A
  /// buffer_pages of 0 gives capacity-0 private pools that miss on every
  /// access — the "no buffer" accounting mode.
  PageCache* PoolFor(uint32_t worker_id);

  /// Runs `batch` by fanning `execute(i, pool)` results into slot i,
  /// reducing per-lane stats at the end.
  template <typename ExecuteFn>
  std::vector<QueryResult> RunBatch(size_t n, ExecuteFn&& execute);

  QueryExecutorOptions options_;
  uint32_t num_lanes_ = 1;

  std::vector<std::thread> threads_;  // num_lanes_ - 1 spawned workers.
  /// Private-pool mode: one pool per lane (index == worker_id, the last
  /// belongs to the calling thread). Empty when the shared pool is on.
  std::vector<std::unique_ptr<BufferPool>> pools_;
  std::unique_ptr<ShardedBufferPool> shared_pool_;

  /// Rendezvous state. Job fields are plain: they are written before the
  /// release-increment of job_epoch_ and read after an acquire-load of it.
  /// This epoch protocol is a lock-free publication scheme, deliberately
  /// outside the mutex-based lock discipline of common/sync.h — clang's
  /// thread-safety analysis cannot model release/acquire hand-offs, so the
  /// invariant here is enforced by the TSAN job plus sglint's
  /// explicit-memory-order rule instead of SGTREE_GUARDED_BY.
  std::unique_ptr<TaskQueue[]> queues_;  // One per lane.
  std::atomic<uint64_t> job_epoch_{0};
  std::atomic<uint32_t> pending_lanes_{0};
  std::atomic<bool> shutdown_{false};
  RangeFn job_fn_ = nullptr;
  void* job_ctx_ = nullptr;
  size_t job_chunk_ = 1;

  QueryStats batch_stats_;
  BatchReport batch_report_;
};

/// LEGACY single-query kernels, now thin wrappers over Execute() with the
/// matching exec/index_backend.h adapter. Kept for old tests and harnesses;
/// new code should construct the adapter and call Execute() directly.
[[deprecated(
    "legacy single-query kernel; call Execute(SgTreeBackend(tree), query, "
    "pool). Removal schedule: DESIGN.md section 11.4")]]
QueryResult ExecuteTreeQuery(const SgTree& tree, const BatchQuery& query,
                             PageCache* pool);
[[deprecated(
    "legacy single-query kernel; call Execute(SgTableBackend(table), query). "
    "Removal schedule: DESIGN.md section 11.4")]]
QueryResult ExecuteTableQuery(const SgTable& table, const BatchQuery& query);
[[deprecated(
    "legacy single-query kernel; call Execute(InvertedIndexBackend(index), "
    "query). Removal schedule: DESIGN.md section 11.4")]]
QueryResult ExecuteInvertedQuery(const InvertedIndex& index,
                                 const BatchQuery& query);

}  // namespace sgtree

#endif  // SGTREE_EXEC_QUERY_EXECUTOR_H_
