#include "exec/index_backend.h"

#include <vector>

namespace sgtree {

void SgTreeBackend::Run(const QueryRequest& request, const QueryContext& ctx,
                        QueryResult* result) const {
  switch (request.type) {
    case QueryType::kKnn:
      result->neighbors =
          DfsKNearest(*tree_, request.query, request.k, ctx, shared_bound_);
      break;
    case QueryType::kBestFirstKnn:
      result->neighbors = BestFirstKNearest(*tree_, request.query, request.k,
                                            ctx, shared_bound_);
      break;
    case QueryType::kRange:
      result->neighbors =
          RangeSearch(*tree_, request.query, request.epsilon, ctx);
      break;
    case QueryType::kContainment:
      result->ids = ContainmentSearch(*tree_, request.query, ctx);
      break;
    case QueryType::kExact:
      result->ids = ExactSearch(*tree_, request.query, ctx);
      break;
    case QueryType::kSubset:
      result->ids = SubsetSearch(*tree_, request.query, ctx);
      break;
  }
}

void SgTableBackend::Run(const QueryRequest& request, const QueryContext& ctx,
                         QueryResult* result) const {
  switch (request.type) {
    case QueryType::kKnn:
    case QueryType::kBestFirstKnn:
      result->neighbors = table_->KNearest(request.query, request.k, ctx);
      break;
    case QueryType::kRange:
      result->neighbors = table_->Range(request.query, request.epsilon, ctx);
      break;
    case QueryType::kContainment:
    case QueryType::kExact:
    case QueryType::kSubset:
      break;  // The SG-table does not index set predicates.
  }
}

void InvertedIndexBackend::Run(const QueryRequest& request,
                               const QueryContext& ctx,
                               QueryResult* result) const {
  const std::vector<ItemId> items = request.query.ToItems();
  switch (request.type) {
    case QueryType::kKnn:
    case QueryType::kBestFirstKnn:
      result->neighbors = index_->KNearest(items, request.k, ctx);
      break;
    case QueryType::kRange:
      result->neighbors = index_->Range(items, request.epsilon, ctx);
      break;
    case QueryType::kContainment:
      result->ids = index_->Containing(items, ctx);
      break;
    case QueryType::kSubset:
      result->ids = index_->ContainedIn(items, ctx);
      break;
    case QueryType::kExact:
      break;  // Exact match needs signatures, not posting lists.
  }
}

void LinearScanBackend::Run(const QueryRequest& request,
                            const QueryContext& ctx,
                            QueryResult* result) const {
  switch (request.type) {
    case QueryType::kKnn:
    case QueryType::kBestFirstKnn:
      result->neighbors =
          scan_->KNearest(request.query, request.k, metric_, ctx);
      break;
    case QueryType::kRange:
      result->neighbors =
          scan_->Range(request.query, request.epsilon, metric_, ctx);
      break;
    case QueryType::kContainment:
      result->ids = scan_->Containing(request.query, ctx);
      break;
    case QueryType::kSubset:
      result->ids = scan_->ContainedIn(request.query, ctx);
      break;
    case QueryType::kExact:
      break;  // The scan exposes no signature-equality entry point.
  }
}

}  // namespace sgtree
