#include "exec/query_api.h"

#include <cmath>

namespace sgtree {

std::string ValidateRequest(const QueryRequest& request) {
  switch (request.type) {
    case QueryType::kKnn:
    case QueryType::kBestFirstKnn:
      if (request.k == 0) return "k must be positive for k-NN queries";
      break;
    case QueryType::kRange:
      if (std::isnan(request.epsilon) || request.epsilon < 0.0) {
        return "epsilon must be non-negative for range queries";
      }
      break;
    case QueryType::kContainment:
    case QueryType::kExact:
    case QueryType::kSubset:
      break;  // Signature-only queries: nothing to validate.
  }
  return std::string();
}

QueryResult Execute(const IndexBackend& backend, const QueryRequest& request,
                    PageCache* pool) {
  QueryResult result;
  ExecuteInto(backend, request, pool, &result);
  return result;
}

void ExecuteInto(const IndexBackend& backend, const QueryRequest& request,
                 PageCache* pool, QueryResult* result) {
  result->neighbors.clear();
  result->ids.clear();
  result->stats = QueryStats{};
  result->trace.Reset();
  result->elapsed_us = 0;
  result->error = ValidateRequest(request);
  if (!result->ok()) return;
  const QueryContext ctx{pool, &result->stats, &result->trace};
  Timer timer;
  backend.Run(request, ctx, result);
  result->elapsed_us = timer.ElapsedMs() * 1000.0;
}

}  // namespace sgtree
