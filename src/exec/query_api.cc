#include "exec/query_api.h"

#include <cmath>
#include <sstream>

namespace sgtree {
namespace {

// "-3.5", not "-3.500000": default ostream precision keeps the message as
// short as the value allows.
std::string FormatDouble(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

}  // namespace

std::string ValidateRequest(const QueryRequest& request) {
  switch (request.type) {
    case QueryType::kKnn:
    case QueryType::kBestFirstKnn:
      // Name the offending value: "k must be > 0" alone sends the caller
      // back to a debugger to learn what they actually passed.
      if (request.k == 0) {
        return "k must be > 0 for k-NN queries, got " +
               std::to_string(request.k);
      }
      break;
    case QueryType::kRange:
      if (std::isnan(request.epsilon)) {
        return "epsilon must be a non-negative number for range queries, "
               "got NaN";
      }
      if (request.epsilon < 0.0) {
        return "epsilon must be >= 0 for range queries, got " +
               FormatDouble(request.epsilon);
      }
      break;
    case QueryType::kContainment:
    case QueryType::kExact:
    case QueryType::kSubset:
      break;  // Signature-only queries: nothing to validate.
  }
  return std::string();
}

QueryResult Execute(const IndexBackend& backend, const QueryRequest& request,
                    PageCache* pool) {
  QueryResult result;
  ExecuteInto(backend, request, pool, &result);
  return result;
}

void ExecuteInto(const IndexBackend& backend, const QueryRequest& request,
                 PageCache* pool, QueryResult* result) {
  result->neighbors.clear();
  result->ids.clear();
  result->stats = QueryStats{};
  result->trace.Reset();
  result->elapsed_us = 0;
  result->error = ValidateRequest(request);
  if (!result->ok()) return;
  const QueryContext ctx{pool, &result->stats, &result->trace};
  Timer timer;
  backend.Run(request, ctx, result);
  result->elapsed_us = timer.ElapsedMs() * 1000.0;
}

}  // namespace sgtree
