#ifndef SGTREE_EXEC_QUERY_API_H_
#define SGTREE_EXEC_QUERY_API_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/linear_scan.h"
#include "common/signature.h"
#include "common/stats.h"
#include "obs/query_trace.h"
#include "storage/query_context.h"

namespace sgtree {

/// The unified query API: one request/result shape for every index backend
/// (SG-tree, SG-table, inverted file, linear scan) and every execution path
/// (serial, the parallel QueryExecutor, the sharded QueryRouter, the CLI,
/// the benches). Callers build a QueryRequest, pick an IndexBackend, and
/// call Execute() — parameter validation, context wiring, and timing happen
/// in exactly one place instead of once per backend overload.

/// Query types a batch may mix freely. kKnn / kBestFirstKnn / kRange fill
/// QueryResult::neighbors; the set-predicate types fill QueryResult::ids.
enum class QueryType {
  kKnn,           // Depth-first branch-and-bound k-NN (Figure 4).
  kBestFirstKnn,  // Optimal best-first k-NN (Hjaltason & Samet).
  kRange,         // All transactions within distance epsilon.
  kContainment,   // Supersets of the query item set.
  kExact,         // Exact signature matches.
  kSubset,        // Subsets of the query item set.
};

/// One query. `k` is used by the k-NN types, `epsilon` by kRange; the
/// others need only the signature.
struct QueryRequest {
  QueryType type = QueryType::kKnn;
  Signature query;
  uint32_t k = 1;
  double epsilon = 0.0;
};

/// LEGACY name from when requests only existed inside executor batches;
/// kept so old call sites compile. New code should say QueryRequest.
using BatchQuery = QueryRequest;

/// Result of one query.
struct QueryResult {
  std::vector<Neighbor> neighbors;  // kKnn / kBestFirstKnn / kRange.
  std::vector<uint64_t> ids;        // kContainment / kExact / kSubset.
  QueryStats stats;                 // Per-query counters (deterministic in
                                    // private-pool mode).
  QueryTrace trace;                 // Per-query pruning trace; lockstep with
                                    // `stats` by construction (QueryContext).
  double elapsed_us = 0;            // Wall time of this query (not compared
                                    // by the determinism tests).
  std::string error;                // Empty on success. Set by Execute()
                                    // when the request fails validation
                                    // (e.g. k == 0, negative epsilon); the
                                    // result is then empty and untimed.

  bool ok() const { return error.empty(); }

  friend bool operator==(const QueryResult& a, const QueryResult& b) {
    return a.neighbors == b.neighbors && a.ids == b.ids &&
           a.error == b.error &&
           a.stats.nodes_accessed == b.stats.nodes_accessed &&
           a.stats.random_ios == b.stats.random_ios &&
           a.stats.transactions_compared == b.stats.transactions_compared &&
           a.stats.bounds_computed == b.stats.bounds_computed &&
           a.trace == b.trace;
  }
};

/// Checks the request's parameters. Returns an empty string when the
/// request is well-formed, else a human-readable reason: k-NN types require
/// k > 0, range requires a finite non-negative epsilon. Execute() calls
/// this at the API boundary so malformed parameters surface as
/// QueryResult::error instead of asserting deep inside the search code.
std::string ValidateRequest(const QueryRequest& request);

/// Uniform view of one index structure for the unified query API. Adapters
/// for the concrete structures live in exec/index_backend.h; the sharded
/// router and the executor treat all of them identically.
class IndexBackend {
 public:
  virtual ~IndexBackend() = default;

  /// Short stable identifier ("sgtree", "sgtable", ...), used in traces,
  /// error messages, and bench labels.
  virtual const char* name() const = 0;

  /// The support matrix, with reasons: empty when this backend answers
  /// `type`, else one line saying why not and what to use instead (e.g.
  /// "sgtable indexes Hamming buckets only; ..."). Harnesses and the CLI
  /// surface the reason instead of asserting on an unsupported combo.
  virtual std::string SupportReason(QueryType type) const = 0;

  /// Whether this backend answers `type` at all. Running an unsupported
  /// type is not an error: it yields an empty result (the backend indexes
  /// nothing that could match — e.g. the SG-table has no set predicates).
  bool Supports(QueryType type) const { return SupportReason(type).empty(); }

  /// Join-capability column of the support matrix: empty when this
  /// backend's collection can be enumerated as one side of a
  /// collection-level join (exec/join_api.h), else a one-line reason. Only
  /// the tree-shaped backends store per-transaction item sets, so the
  /// default is a refusal naming the backend.
  virtual std::string JoinInputReason() const {
    return std::string("backend '") + name() +
           "' cannot enumerate per-transaction item sets; join from an "
           "sgtree-backed index instead";
  }

  /// Answers `request`, filling result->neighbors or result->ids and
  /// charging node accesses / counters to `ctx`. Called with a validated
  /// request — parameter checking is Execute()'s job, not the backend's.
  virtual void Run(const QueryRequest& request, const QueryContext& ctx,
                   QueryResult* result) const = 0;
};

/// The single dispatch point of the query API: validates `request`, wires a
/// QueryContext charging `pool` (may be null for backends that do no paged
/// I/O) and the result's own stats/trace, runs the backend, and stamps the
/// wall time. On validation failure the result is empty with `error` set
/// and the backend is never invoked.
QueryResult Execute(const IndexBackend& backend, const QueryRequest& request,
                    PageCache* pool = nullptr);

/// Allocation-free variant for hot batch loops: identical semantics to
/// Execute(), but the answer is written into `*result`, whose vectors are
/// cleared — not deallocated — first. A caller that reuses the same
/// QueryResult slots across batches (the sharded router's scatter buffers)
/// therefore pays for neighbor/id storage once, not once per task.
void ExecuteInto(const IndexBackend& backend, const QueryRequest& request,
                 PageCache* pool, QueryResult* result);

}  // namespace sgtree

#endif  // SGTREE_EXEC_QUERY_API_H_
