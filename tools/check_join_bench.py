#!/usr/bin/env python3
"""Gate on the containment-join bench JSON (BENCH_join.json).

Two promises are gated:

  1. The state-of-the-art backends earn their keep: on the Zipf-skewed
     workload, PRETTI or FVT must beat the tree-vs-tree baseline's join
     throughput (pairs/sec) by at least --min-speedup. Relative throughput
     on one machine is machine-independent enough to gate on; absolute
     pairs/sec is not, so no absolute floor.
  2. The sharded scatter-gather merge stayed byte-identical to the
     single-index join for every algorithm (`sharded_matches` — the bench
     itself compares the pair vectors and records the verdict).

Every algorithm must also report the same pair count: a backend that wins
by emitting fewer pairs is wrong, not fast.

Exit code 0 = pass. Nonzero = regression (or an unreadable/incomplete
bench file), always with a one-line FAIL message — never a traceback:
this runs as a CI gate, and "the bench crashed before writing its JSON"
must read as exactly that, not as a KeyError.

Usage: check_join_bench.py BENCH_join.json [--min-speedup 1.0]
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="required (best of pretti, fvt) / tree "
                             "pairs-per-second ratio (default 1.0)")
    args = parser.parse_args()

    try:
        with open(args.json_path) as fh:
            data = json.load(fh)
    except OSError as err:
        print(f"FAIL: cannot read {args.json_path}: {err.strerror or err} "
              "(did bench_join run and write its JSON?)")
        return 1
    except json.JSONDecodeError as err:
        print(f"FAIL: {args.json_path} is not valid JSON ({err}) — "
              "truncated or partially written bench output?")
        return 1
    if not isinstance(data, dict) or not data.get("rows"):
        print(f"FAIL: {args.json_path} has no 'rows' — empty or "
              "incomplete bench output")
        return 1

    rows = {}
    for row in data["rows"]:
        if not isinstance(row, dict) or "algo" not in row:
            print(f"FAIL: malformed bench row {row!r}")
            return 1
        rows[row["algo"]] = row
    missing = [a for a in ("tree", "pretti", "fvt") if a not in rows]
    if missing:
        print(f"FAIL: bench rows missing algorithms: {', '.join(missing)}")
        return 1

    pair_counts = {a: rows[a].get("pairs") for a in rows}
    if len(set(pair_counts.values())) != 1:
        print(f"FAIL: algorithms disagree on the pair count: {pair_counts} "
              "— a join backend is dropping or inventing pairs")
        return 1
    if not pair_counts["tree"]:
        print("FAIL: the join produced zero pairs — the workload cannot "
              "distinguish the backends")
        return 1

    if data.get("sharded_matches") is not True:
        print("FAIL: sharded join merge is not byte-identical to the "
              "single-index join (sharded_matches = "
              f"{data.get('sharded_matches')!r})")
        return 1

    try:
        tree_rate = float(rows["tree"]["pairs_per_sec"])
        best_algo, best_rate = max(
            ((a, float(rows[a]["pairs_per_sec"])) for a in ("pretti", "fvt")),
            key=lambda kv: kv[1])
    except (KeyError, TypeError, ValueError):
        print("FAIL: bench rows lack numeric 'pairs_per_sec' fields")
        return 1
    if tree_rate <= 0:
        print("FAIL: tree baseline reported non-positive pairs_per_sec "
              f"({tree_rate})")
        return 1
    speedup = best_rate / tree_rate
    if speedup < args.min_speedup:
        print(f"FAIL: best set-containment backend ({best_algo}, "
              f"{best_rate:.0f} pairs/s) is only {speedup:.2f}x the tree "
              f"baseline ({tree_rate:.0f} pairs/s); required "
              f">= {args.min_speedup:.2f}x")
        return 1

    print(f"OK: {best_algo} joins at {best_rate:.0f} pairs/s = "
          f"{speedup:.2f}x the tree baseline ({tree_rate:.0f} pairs/s); "
          f"all algorithms agree on {pair_counts['tree']} pairs; "
          "sharded merge byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
