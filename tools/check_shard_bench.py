#!/usr/bin/env python3
"""Gate on the shard-scaling bench JSON (BENCH_shard.json).

The bench's headline curve — modeled QPS, computed from per-shard service
times under a one-core-per-shard assumption — is machine-independent, but
measured wall-clock QPS is not: a single-core CI runner physically cannot
run 8 shard tasks at once. So the gate normalizes by the cores the runner
actually has before comparing:

    achievable_qps = modeled_qps * min(cores, shards) / shards
    measured_qps >= achievable_qps / SLACK            (scheduling gate)

and additionally requires the core-independent dispatch efficiency the
bench emits (total backend service time / machine-time available) to stay
above a floor — this is the number the chunked/work-stealing scheduler
actually moves, and it catches regressions even when QPS noise would not.

Exit code 0 = pass. Nonzero = regression, with a message naming the row.

Usage: check_shard_bench.py BENCH_shard.json [--shards 8]
       [--qps-slack 1.5] [--min-efficiency 0.5]
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path")
    parser.add_argument("--shards", type=int, default=8,
                        help="shard count of the gated row (default 8)")
    parser.add_argument("--qps-slack", type=float, default=1.5,
                        help="allowed measured-vs-achievable QPS factor")
    parser.add_argument("--min-efficiency", type=float, default=0.5,
                        help="dispatch-efficiency floor for the gated row")
    args = parser.parse_args()

    with open(args.json_path) as fh:
        data = json.load(fh)

    cores = int(data.get("cores", 1))
    rows = data.get("rows", [])
    row = next((r for r in rows if r.get("shards") == args.shards), None)
    if row is None:
        print(f"FAIL: no row with shards={args.shards} in {args.json_path}")
        return 1

    measured = float(row["measured_qps"])
    modeled = float(row["modeled_qps"])
    efficiency = float(row["efficiency"])
    achievable = modeled * min(cores, args.shards) / args.shards
    floor = achievable / args.qps_slack

    print(f"shards={args.shards} cores={cores} measured={measured:.1f} "
          f"modeled={modeled:.1f} achievable={achievable:.1f} "
          f"floor={floor:.1f} efficiency={efficiency:.3f}")

    ok = True
    if measured < floor:
        print(f"FAIL: measured_qps {measured:.1f} < {floor:.1f} "
              f"(achievable {achievable:.1f} / slack {args.qps_slack})")
        ok = False
    if efficiency < args.min_efficiency:
        print(f"FAIL: efficiency {efficiency:.3f} < "
              f"{args.min_efficiency:.3f}")
        ok = False

    # The ablation rows are informational, but the default mode must not be
    # slower than the legacy scheduler it replaced (tolerating 20% noise —
    # CI runners are shared machines).
    ablation = {r.get("label"): r for r in data.get("ablation", [])}
    if "legacy" in ablation and "+overlap" in ablation:
        legacy = float(ablation["legacy"]["measured_qps"])
        current = float(ablation["+overlap"]["measured_qps"])
        print(f"ablation: legacy={legacy:.1f} qps, default={current:.1f} qps")
        if current < 0.8 * legacy:
            print(f"FAIL: default scheduler ({current:.1f} qps) is slower "
                  f"than legacy ({legacy:.1f} qps)")
            ok = False

    print("PASS" if ok else "check_shard_bench: regression detected")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
