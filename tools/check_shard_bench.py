#!/usr/bin/env python3
"""Gate on the shard-scaling bench JSON (BENCH_shard.json).

The bench's headline curve — modeled QPS, computed from per-shard service
times under a one-core-per-shard assumption — is machine-independent, but
measured wall-clock QPS is not: a single-core CI runner physically cannot
run 8 shard tasks at once. So the gate normalizes by the cores the runner
actually has before comparing:

    achievable_qps = modeled_qps * min(cores, shards) / shards
    measured_qps >= achievable_qps / SLACK            (scheduling gate)

and additionally requires the core-independent dispatch efficiency the
bench emits (total backend service time / machine-time available) to stay
above a floor — this is the number the chunked/work-stealing scheduler
actually moves, and it catches regressions even when QPS noise would not.

Exit code 0 = pass. Nonzero = regression (or an unreadable/incomplete
bench file), always with a one-line FAIL message — never a traceback: this
runs as a CI gate, and "the bench crashed before writing its JSON" must
read as exactly that, not as a KeyError.

Usage: check_shard_bench.py BENCH_shard.json [--shards 8]
       [--qps-slack 1.5] [--min-efficiency 0.5]
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path")
    parser.add_argument("--shards", type=int, default=8,
                        help="shard count of the gated row (default 8)")
    parser.add_argument("--qps-slack", type=float, default=1.5,
                        help="allowed measured-vs-achievable QPS factor")
    parser.add_argument("--min-efficiency", type=float, default=0.5,
                        help="dispatch-efficiency floor for the gated row")
    args = parser.parse_args()

    try:
        with open(args.json_path) as fh:
            data = json.load(fh)
    except OSError as err:
        print(f"FAIL: cannot read {args.json_path}: {err.strerror or err} "
              "(did bench_shard_scaling run and write its JSON?)")
        return 1
    except json.JSONDecodeError as err:
        print(f"FAIL: {args.json_path} is not valid JSON ({err}) — "
              "truncated or partially written bench output?")
        return 1
    if not isinstance(data, dict) or not data.get("rows"):
        print(f"FAIL: {args.json_path} has no 'rows' — empty or "
              "incomplete bench output")
        return 1

    try:
        cores = int(data.get("cores", 1))
    except (TypeError, ValueError):
        print(f"FAIL: non-numeric 'cores' field: {data.get('cores')!r}")
        return 1
    if cores <= 0:
        print(f"FAIL: cores={cores} — the bench wrote a zero-core row, so "
              "the achievable-QPS normalization is undefined "
              "(hardware_concurrency() returned 0?)")
        return 1

    rows = data["rows"]
    row = next((r for r in rows if isinstance(r, dict)
                and r.get("shards") == args.shards), None)
    if row is None:
        have = sorted(r.get("shards") for r in rows if isinstance(r, dict))
        print(f"FAIL: no row with shards={args.shards} in {args.json_path} "
              f"(rows present: {have})")
        return 1

    try:
        measured = float(row["measured_qps"])
        modeled = float(row["modeled_qps"])
        efficiency = float(row["efficiency"])
    except KeyError as err:
        print(f"FAIL: shards={args.shards} row is missing field {err} — "
              "bench output from an older format?")
        return 1
    except (TypeError, ValueError) as err:
        print(f"FAIL: shards={args.shards} row has a non-numeric field: "
              f"{err}")
        return 1
    if modeled <= 0:
        print(f"FAIL: modeled_qps={modeled} in the shards={args.shards} "
              "row — the bench measured nothing")
        return 1
    achievable = modeled * min(cores, args.shards) / args.shards
    floor = achievable / args.qps_slack

    print(f"shards={args.shards} cores={cores} measured={measured:.1f} "
          f"modeled={modeled:.1f} achievable={achievable:.1f} "
          f"floor={floor:.1f} efficiency={efficiency:.3f}")

    ok = True
    if measured < floor:
        print(f"FAIL: measured_qps {measured:.1f} < {floor:.1f} "
              f"(achievable {achievable:.1f} / slack {args.qps_slack})")
        ok = False
    if efficiency < args.min_efficiency:
        print(f"FAIL: efficiency {efficiency:.3f} < "
              f"{args.min_efficiency:.3f}")
        ok = False

    # The ablation rows are informational, but the default mode must not be
    # slower than the legacy scheduler it replaced (tolerating 20% noise —
    # CI runners are shared machines).
    ablation = {r.get("label"): r for r in data.get("ablation", [])
                if isinstance(r, dict)}
    if "measured_qps" in ablation.get("legacy", {}) and \
            "measured_qps" in ablation.get("+overlap", {}):
        legacy = float(ablation["legacy"]["measured_qps"])
        current = float(ablation["+overlap"]["measured_qps"])
        print(f"ablation: legacy={legacy:.1f} qps, default={current:.1f} qps")
        if current < 0.8 * legacy:
            print(f"FAIL: default scheduler ({current:.1f} qps) is slower "
                  f"than legacy ({legacy:.1f} qps)")
            ok = False

    print("PASS" if ok else "check_shard_bench: regression detected")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
