#!/usr/bin/env python3
"""Gate on the serving-path bench JSON (BENCH_serve.json).

Two properties of the serving stack are machine-independent enough to gate
in CI, and both are behaviors the bench is constructed to force:

  1. Under light load (the sweep's FIRST row), the end-to-end p99 — measured
     from the open-loop schedule, so queueing counts — stays within the
     batcher's latency budget (times --p99-slack for shared-runner noise).
     The adaptive linger exists precisely so coalescing never pushes the
     tail past the budget on its own; this checks it held.
  2. Past saturation (the sweep's LAST row, offered far beyond capacity),
     admission control actually sheds: busy > 0. A server that never says
     BUSY under overload is queueing unboundedly, which is the failure mode
     the admission budget exists to prevent.

Also requires zero transport errors everywhere, a nonzero closed-loop
baseline, and that the Zipf reuse actually exercised the result cache
(cache_hits > 0).

Exit code 0 = pass. Nonzero = regression (or an unreadable/incomplete bench
file), always with a one-line FAIL message — never a traceback: this runs
as a CI gate, and "the bench crashed before writing its JSON" must read as
exactly that, not as a KeyError.

Usage: check_serve_bench.py BENCH_serve.json [--p99-slack 1.5]
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path")
    parser.add_argument("--p99-slack", type=float, default=1.5,
                        help="allowed p99-vs-budget factor at light load")
    args = parser.parse_args()

    try:
        with open(args.json_path) as fh:
            data = json.load(fh)
    except OSError as err:
        print(f"FAIL: cannot read {args.json_path}: {err.strerror or err} "
              "(did bench_serve run and write its JSON?)")
        return 1
    except json.JSONDecodeError as err:
        print(f"FAIL: {args.json_path} is not valid JSON ({err}) — "
              "truncated or partially written bench output?")
        return 1
    if not isinstance(data, dict) or not data.get("rows"):
        print(f"FAIL: {args.json_path} has no 'rows' — empty or "
              "incomplete bench output")
        return 1

    rows = [r for r in data["rows"] if isinstance(r, dict)]
    if len(rows) < 2:
        print(f"FAIL: need at least 2 sweep rows (light load + saturation), "
              f"got {len(rows)}")
        return 1

    try:
        budget_us = float(data["latency_budget_us"])
        closed_qps = float(data.get("closed_loop", {}).get("qps", 0))
        cache_hits = int(data.get("cache_hits", 0))
        light, saturated = rows[0], rows[-1]
        light_p99 = float(light["p99_us"])
        light_ok = int(light["ok"])
        saturated_busy = int(saturated["busy"])
        total_errors = sum(int(r.get("errors", 0)) for r in rows)
        total_errors += int(data.get("closed_loop", {}).get("errors", 0))
    except KeyError as err:
        print(f"FAIL: bench output is missing field {err} — output from an "
              "older format?")
        return 1
    except (TypeError, ValueError) as err:
        print(f"FAIL: bench output has a non-numeric field: {err}")
        return 1

    ceiling = budget_us * args.p99_slack
    print(f"closed_loop={closed_qps:.0f} qps  "
          f"light: offered={light.get('offered_qps')} ok={light_ok} "
          f"p99={light_p99:.0f}us (ceiling {ceiling:.0f}us)  "
          f"saturated: offered={saturated.get('offered_qps')} "
          f"busy={saturated_busy}  cache_hits={cache_hits}")

    ok = True
    if budget_us <= 0:
        print(f"FAIL: latency_budget_us={budget_us} — nothing to gate "
              "the tail against")
        ok = False
    if closed_qps <= 0:
        print("FAIL: closed-loop baseline measured 0 qps — the server "
              "answered nothing")
        ok = False
    if light_ok <= 0:
        print("FAIL: light-load row completed 0 requests")
        ok = False
    elif light_p99 > ceiling:
        print(f"FAIL: light-load p99 {light_p99:.0f}us > budget "
              f"{budget_us:.0f}us * slack {args.p99_slack} — batching/"
              "hedging is pushing the tail past its own budget")
        ok = False
    if saturated_busy <= 0:
        print("FAIL: saturation row shed nothing (busy=0) — admission "
              "control never engaged past the in-flight budget")
        ok = False
    if total_errors > 0:
        print(f"FAIL: {total_errors} transport error(s) across the sweep")
        ok = False
    if cache_hits <= 0:
        print("FAIL: cache_hits=0 — the Zipf workload never hit the "
              "result cache")
        ok = False

    print("PASS" if ok else "check_serve_bench: regression detected")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
