#!/usr/bin/env python3
"""sglint — fast repo lint for invariants no compiler flag covers.

Rules (all first-party C++ under src/ and fuzz/):

  raw-sync      std::mutex / lock_guard / unique_lock / scoped_lock /
                condition_variable / shared_mutex outside src/common/.
                The blessed primitives are the annotated Mutex / MutexLock /
                CondVar wrappers in src/common/sync.h — raw primitives are
                invisible to the thread-safety analysis, so one stray
                std::mutex is an unchecked hole in the lock discipline.

  bare-assert   assert( outside src/common/. Bare assert vanishes under
                NDEBUG; use SGTREE_ASSERT / SGTREE_ASSERT_MSG (always on)
                or SGTREE_DCHECK (explicitly debug-only) from
                src/common/check.h. static_assert is fine anywhere.

  rand          rand() / srand() / std::rand outside src/common/. The
                repro story depends on seeded RNG (common/rng.h); libc
                rand is hidden global state.

  raw-mmap      mmap( / munmap( outside src/common/ and src/static/.
                The blessed entry point is Env::MapReadOnly (wrapping
                common/mmap_file.h): it owns the fallback path for
                environments without mmap and keeps fault injection able
                to interpose. A stray raw mapping is untracked lifetime
                the static-view invariants can't see.

  raw-socket    socket( / bind( / listen( / accept( / connect( / send( /
                recv( / shutdown( and friends outside src/net/. The
                blessed entry points are net::Socket / net::ListenSocket
                (net/socket.h): they own the timeout discipline, the
                EINTR loops, and the cross-thread Shutdown unblock. A
                stray raw socket call is an fd with none of that.

  memory-order  every std::atomic load/store/exchange/fetch_*/
                compare_exchange names an explicit std::memory_order.
                Defaulted seq_cst hides the cost and, worse, hides the
                author's intent — every lock-free protocol in this repo
                (executor epochs, router countdowns, metric shards) is
                documented through its explicit orders.

  todo-tag      TODO must carry an issue tag: TODO(#123). Untracked TODOs
                rot; this also covers tools/ and tests/.

Suppress a finding by appending  // sglint-allow(<rule>)  with a reason on
the flagged line.

Usage: sglint.py [--root DIR] [--list-rules]
Exit 0 = clean, 1 = findings (one "path:line: rule: message" per line).
"""

import argparse
import os
import re
import sys

CC_EXTENSIONS = (".h", ".cc")

RAW_SYNC = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b")
BARE_ASSERT = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
RAND = re.compile(r"(?<![A-Za-z0-9_.])(?:std::)?s?rand\s*\(")
RAW_MMAP = re.compile(r"(?<![A-Za-z0-9_])(?:::)?m(?:un)?map\s*\(")
RAW_SOCKET = re.compile(
    r"(?<![A-Za-z0-9_])(?<!std::)(?:::)?"
    r"(?:socket|bind|listen|accept4?|connect|setsockopt|getsockopt|"
    r"getsockname|getpeername|send|sendto|sendmsg|recv|recvfrom|recvmsg|"
    r"shutdown)\s*\(")
ATOMIC_OP = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong)\s*\(")
TODO = re.compile(r"\bTODO\b")
TODO_TAGGED = re.compile(r"\bTODO\((?:[A-Za-z0-9_-]+)?#\d+\)")
ALLOW = re.compile(r"sglint-allow\((?P<rule>[a-z-]+)\)")

LINE_COMMENT = re.compile(r"//.*$")
STRING = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_code(line):
    """Removes string literals and // comments so rules see only code."""
    return LINE_COMMENT.sub("", STRING.sub('""', line))


def allowed(line, rule):
    m = ALLOW.search(line)
    return m is not None and m.group("rule") == rule


def call_expression(lines, row, start_col):
    """Joins lines from the opening paren at (row, start_col) until the
    call's parens balance (or 8 lines pass — no sane atomic op is longer).
    Returns the flattened call text."""
    depth = 0
    parts = []
    for r in range(row, min(row + 8, len(lines))):
        code = strip_code(lines[r])
        begin = start_col if r == row else 0
        for c in range(begin, len(code)):
            ch = code[c]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    parts.append(code[begin:c + 1])
                    return " ".join(parts)
        parts.append(code[begin:])
    return " ".join(parts)


def lint_cpp(path, rel, in_common, may_mmap, may_socket, findings):
    with open(path, encoding="utf-8", errors="replace") as fh:
        lines = fh.read().splitlines()

    for i, raw in enumerate(lines, start=1):
        code = strip_code(raw)
        if not code.strip():
            continue

        if not in_common:
            if RAW_SYNC.search(code) and not allowed(raw, "raw-sync"):
                findings.append(
                    (rel, i, "raw-sync",
                     "raw standard sync primitive; use the annotated "
                     "wrappers in common/sync.h"))
            if (BARE_ASSERT.search(code)
                    and "static_assert" not in code
                    and not allowed(raw, "bare-assert")):
                findings.append(
                    (rel, i, "bare-assert",
                     "bare assert() vanishes under NDEBUG; use "
                     "SGTREE_ASSERT / SGTREE_DCHECK (common/check.h)"))
            if RAND.search(code) and not allowed(raw, "rand"):
                findings.append(
                    (rel, i, "rand",
                     "libc rand is unseeded global state; use "
                     "common/rng.h"))

        if not may_mmap:
            if RAW_MMAP.search(code) and not allowed(raw, "raw-mmap"):
                findings.append(
                    (rel, i, "raw-mmap",
                     "raw mmap/munmap outside src/common/ and src/static/; "
                     "map files through Env::MapReadOnly"))

        if not may_socket:
            if RAW_SOCKET.search(code) and not allowed(raw, "raw-socket"):
                findings.append(
                    (rel, i, "raw-socket",
                     "raw socket call outside src/net/; go through "
                     "net::Socket / net::ListenSocket (net/socket.h)"))

        for m in ATOMIC_OP.finditer(code):
            paren = code.index("(", m.end() - 1)
            call = call_expression(lines, i - 1, paren)
            if "memory_order" not in call and not allowed(raw, "memory-order"):
                findings.append(
                    (rel, i, "memory-order",
                     f"atomic .{m.group(1)}() without an explicit "
                     "std::memory_order"))


def lint_todo(path, rel, findings):
    with open(path, encoding="utf-8", errors="replace") as fh:
        for i, raw in enumerate(fh.read().splitlines(), start=1):
            if TODO.search(raw) and not TODO_TAGGED.search(raw) \
                    and not allowed(raw, "todo-tag"):
                findings.append(
                    (rel, i, "todo-tag",
                     "TODO without an issue tag; write TODO(#NNN)"))


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        print("raw-sync bare-assert rand raw-mmap raw-socket memory-order "
              "todo-tag")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"sglint: {root} does not look like the repo root "
              "(no src/ directory)", file=sys.stderr)
        return 2

    findings = []
    checked = 0

    # C++ rules: first-party code only. Tests/bench are gtest/gbench hosts
    # with their own idioms; the compiled product is src/ + fuzz/.
    for top in ("src", "fuzz"):
        for dirpath, _, names in sorted(os.walk(os.path.join(root, top))):
            for name in sorted(names):
                if not name.endswith(CC_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                in_common = rel.startswith(os.path.join("src", "common"))
                may_mmap = in_common or rel.startswith(
                    os.path.join("src", "static"))
                may_socket = rel.startswith(os.path.join("src", "net"))
                lint_cpp(path, rel, in_common, may_mmap, may_socket,
                         findings)
                checked += 1

    # TODO policy sweeps everything first-party, scripts included.
    for top in ("src", "fuzz", "tests", "bench", "tools", "examples"):
        topdir = os.path.join(root, top)
        if not os.path.isdir(topdir):
            continue
        for dirpath, _, names in sorted(os.walk(topdir)):
            for name in sorted(names):
                if name.endswith(CC_EXTENSIONS + (".py", ".cmake")) \
                        or name == "CMakeLists.txt":
                    path = os.path.join(dirpath, name)
                    if os.path.samefile(path, os.path.abspath(__file__)):
                        continue  # This file names the rules it enforces.
                    lint_todo(path, os.path.relpath(path, root), findings)
                    checked += 1

    for rel, line, rule, message in findings:
        print(f"{rel}:{line}: {rule}: {message}")
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"sglint: {checked} files checked, {status}")
    return 0 if not findings else 1


if __name__ == "__main__":
    sys.exit(main())
